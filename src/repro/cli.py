"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's operators use Collie:

* ``search``      — run Collie on a Table 1 subsystem, print the anomaly
                    set (optionally save a JSON report); ``--seeds N``
                    fans a multi-seed campaign across ``--workers``
                    processes and ``--cache`` memoizes evaluations;
* ``parallel``    — the §8 fleet extension: partition counters across
                    machines (``--workers``/``--cache`` as above);
* ``campaign``    — multi-seed comparison campaign for any registered
                    approach (Figure 4 style);
* ``report``      — re-render one or more run journals: summary,
                    anomaly timeline, counter trajectory export; an
                    unreadable journal is reported per-file and the
                    rest still render (exit = worst per-file code);
* ``journal``     — ``verify`` a journal file (exit 0 complete, 1
                    resumable, 2 corrupt) or ``diff`` two journals for
                    search-quality regressions (exit 0 clean, 1
                    regression, 2 unreadable);
* ``coverage``    — render a journal's workload-space occupancy maps;
* ``profile``     — render a journal's span self-time profile and
                    export Chrome trace-event JSON (``--trace-out``);
* ``stats``       — print hit rates and per-phase wall time from one
                    or more saved evaluation caches (per-file errors,
                    exit = worst per-file code);
* ``canary``      — ``record`` the baseline journal corpus
                    (``canary/corpus/``) or ``check`` the current code
                    against it: statistical drift gates across the
                    seed population plus hard behavioural invariants
                    (exit 0 clean, 1 drift/violation, 2 corpus
                    unreadable — see :mod:`repro.canary`);
* ``isolation``   — the adversarial-neighbor catalog: per-subsystem
                    co-run searches against a pinned victim (the
                    ``search --victim`` domain), every minimized
                    attacker verified by replay before listing;
* ``top``         — live terminal dashboard over actively-written
                    journals: progress, per-worker heartbeat liveness,
                    per-chain SA rows, anomaly timeline, drift vs an
                    optional baseline journal;
* ``replay``      — replay the 18 Appendix A trigger settings;
* ``diagnose``    — match a workload (JSON file) against a saved
                    report's MFS set (§7.3 debugging workflow);
* ``table1`` / ``table2`` — print the paper's tables.

Observability: ``search``/``parallel``/``campaign`` accept
``--journal PATH`` (structured JSONL flight-recorder journal, see
:mod:`repro.obs`), ``--progress N`` (a live progress line every N
experiments / completed tasks), ``--coverage`` (workload-space
occupancy tracking), ``--profile`` (wall-clock span profiling) and
``--export-metrics PORT`` (a live HTTP telemetry endpoint: Prometheus
text at ``/metrics``, a JSON worker table at ``/status``, plus
schema-v7 heartbeat records when combined with ``--journal``).  Output goes through :mod:`logging`
(configured by ``--log-level``/``--log-json``): INFO and below to
stdout, WARNING and above to stderr.

Fault tolerance: the three campaign surfaces accept ``--retries N``,
``--task-timeout S`` and ``--backoff S`` (bounded retries with
deterministic exponential backoff plus host quarantine, see
:mod:`repro.core.faults`), and ``campaign --resume JOURNAL`` restarts
an interrupted campaign from a journal's valid prefix, recomputing
only the seeds that never finished.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Optional, Sequence

import numpy as np

logger = logging.getLogger("repro.cli")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _open_cache(args: argparse.Namespace):
    """Build the EvalCache requested by ``--cache`` (None without it)."""
    if not getattr(args, "cache", None):
        return None
    from repro.core.evalcache import EvalCache

    try:
        cache = EvalCache(path=args.cache)
    except ValueError as error:  # bad JSON or wrong format version
        logger.error(f"cannot load cache store {args.cache}: {error}")
        raise SystemExit(2)
    if cache.loaded_entries:
        logger.info(
            f"cache: warm-started with {cache.loaded_entries} entries "
            f"from {args.cache}"
        )
    return cache


def _close_cache(cache) -> None:
    """Persist and summarise the cache after a command."""
    if cache is None:
        return
    path = cache.save()
    logger.info(f"\n{cache.describe()}")
    logger.info(f"cache saved to {path}")


def _open_recorder(args: argparse.Namespace):
    """Build the FlightRecorder requested by the observability flags.

    Any of ``--journal``/``--progress``/``--coverage``/``--profile``
    turns the recorder on; without them this returns None and the hot
    paths pay only a ``recorder is not None`` check per site.
    """
    journal_path = getattr(args, "journal", None)
    progress = getattr(args, "progress", 0)
    coverage = getattr(args, "coverage", False)
    profile = getattr(args, "profile", False)
    export_port = getattr(args, "export_metrics", None)
    if (
        not journal_path and not progress and not coverage
        and not profile and export_port is None
    ):
        return None
    from repro.obs import FlightRecorder, RunJournal, SpanProfiler

    journal = RunJournal(journal_path) if journal_path else None
    recorder = FlightRecorder(
        journal=journal, progress_every=progress, track_coverage=coverage,
        heartbeats=export_port is not None,
    )
    if profile:
        recorder.profiler = SpanProfiler(metrics=recorder.metrics)
    if export_port is not None:
        from repro.obs import CampaignAggregator, TelemetryServer

        aggregator = (
            CampaignAggregator([journal_path]) if journal_path else None
        )
        server = TelemetryServer(
            metrics=recorder.metrics, aggregator=aggregator,
            port=export_port,
        ).start()
        recorder.telemetry = server
        logger.info(
            f"telemetry: serving {server.url('/metrics')} and "
            f"{server.url('/status')}"
        )
    return recorder


def _close_recorder(recorder) -> None:
    if recorder is None:
        return
    faults = recorder.metrics.counters_with_prefix("faults.")
    if faults:
        logger.info(
            "fault events: "
            + ", ".join(f"{key}={value:g}" for key, value in faults.items())
        )
    recorder.close()
    if recorder.coverage is not None:
        logger.info("")
        logger.info(recorder.coverage.render())
    if recorder.profiler is not None:
        from repro.obs import render_span_table

        logger.info("")
        logger.info(render_span_table(recorder.profiler.events()))
    if recorder.journal is not None:
        logger.info(
            f"journal saved to {recorder.journal.path} "
            f"({recorder.journal.records_written} records)"
        )
    if recorder.telemetry is not None:
        recorder.telemetry.close()
        recorder.telemetry = None


def _retry_policy(args: argparse.Namespace):
    """Build the RetryPolicy requested by the resilience flags.

    Returns None when no flag was given — the executor then keeps its
    legacy fail-fast behaviour.
    """
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "task_timeout", None)
    backoff = getattr(args, "backoff", None)
    if retries is None and timeout is None and backoff is None:
        return None
    from repro.core.faults import RetryPolicy

    return RetryPolicy(
        max_retries=retries if retries is not None else 2,
        timeout_seconds=timeout,
        backoff_base=backoff if backoff is not None else 0.0,
    )


#: ``--victim`` preset names → victim factory.
_VICTIM_PRESETS = ("small-message", "default")


def _parse_victim(spec: str):
    """``--victim SPEC`` → the pinned victim workload.

    ``SPEC`` is either a preset name (``small-message``, its alias
    ``default``) or comma-separated ``key=value`` overrides applied on
    top of the small-message preset — e.g.
    ``num_qps=64,msg_sizes_bytes=512;4096``.  Values are coerced to the
    field's serialized type (``;`` separates message-pattern entries).
    """
    from repro.analysis.isolation import default_victim
    from repro.analysis.serialize import workload_from_dict, workload_to_dict

    if spec in _VICTIM_PRESETS:
        return default_victim()
    base = workload_to_dict(default_victim())
    for part in spec.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"bad --victim entry {part!r}: expected a preset "
                f"({', '.join(_VICTIM_PRESETS)}) or key=value pairs"
            )
        if key not in base:
            raise ValueError(
                f"unknown victim field {key!r} "
                f"(choose from {', '.join(sorted(base))})"
            )
        current = base[key]
        value = value.strip()
        if isinstance(current, bool):
            base[key] = value.lower() in ("1", "true", "yes")
        elif isinstance(current, int):
            base[key] = int(value)
        elif isinstance(current, float):
            base[key] = float(value)
        elif isinstance(current, (list, tuple)):
            base[key] = [int(item) for item in value.split(";")]
        else:
            base[key] = value
    return workload_from_dict(base)


def _victim_from_args(args: argparse.Namespace):
    """The (victim, share) the flags describe; SystemExit(2) on bad spec."""
    spec = getattr(args, "victim", None)
    if not spec:
        return None
    try:
        return _parse_victim(spec)
    except (ValueError, KeyError) as error:
        logger.error(f"cannot parse --victim {spec!r}: {error}")
        raise SystemExit(2)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.analysis.serialize import save_report
    from repro.core import Collie

    population = args.chains > 1 or args.tempering
    if args.seeds > 1 and population:
        logger.error("--seeds and --chains/--tempering are mutually "
                     "exclusive: a population already runs one chain "
                     "per seed")
        return 2
    if args.tempering and args.chains < 2:
        logger.error("--tempering needs --chains >= 2 (one chain per "
                     "ladder rung)")
        return 2
    victim = _victim_from_args(args)
    if victim is not None and args.seeds > 1 and (
        args.workers > 1 or _retry_policy(args) is not None
    ):
        logger.error("--victim campaigns run in-process (the lockstep "
                     "population path): drop --workers and the retry "
                     "flags")
        return 2
    cache = _open_cache(args)
    recorder = _open_recorder(args)
    if args.seeds > 1:
        if args.workers == 1 and _retry_policy(args) is None:
            # Same seeds, same reports, one process: the population
            # driver steps the chains in lockstep with batched solves
            # instead of running the seeds one scalar walk at a time.
            return _run_search_population(
                args, cache, recorder, chains=args.seeds,
                campaign_format=True, victim=victim,
            )
        return _run_search_campaign(args, cache, recorder)
    if population:
        return _run_search_population(
            args, cache, recorder, chains=args.chains, victim=victim,
        )
    collie = Collie.for_subsystem(
        args.subsystem,
        counter_mode=args.counters,
        use_mfs=not args.no_mfs,
        budget_hours=args.hours,
        seed=args.seed,
        cache=cache,
        recorder=recorder,
        batch=not args.no_batch,
        batch_probes=args.batch_probes,
        latency=not args.no_latency,
        victim=victim,
        victim_share=args.victim_share,
    )
    report = collie.run()
    if victim is not None:
        floor = collie.testbed.victim_floor
        logger.info(
            f"victim: {victim.summary()} — share {args.victim_share:g} "
            f"(fair {floor.fair_share_gbps:.1f} of {floor.alone_gbps:.1f} "
            f"Gbps alone, p99 floor {floor.alone_p99_us:.2f} us)"
        )
    logger.info(report.summary())
    if args.recipes:
        from repro.core.reproducer import recipe

        for index, mfs in enumerate(report.anomalies, 1):
            logger.info("")
            logger.info(recipe(mfs.witness, title=f"anomaly {index}"))
    if args.output:
        save_report(report, args.output)
        logger.info(f"\nreport saved to {args.output}")
    _close_recorder(recorder)
    _close_cache(cache)
    return 0


def _search_approach(args: argparse.Namespace) -> str:
    if args.no_mfs:
        return "sa-perf" if args.counters == "perf" else "sa-diag"
    return "collie-perf" if args.counters == "perf" else "collie"


def _run_search_population(
    args: argparse.Namespace, cache, recorder,
    chains: int, campaign_format: bool = False, victim=None,
) -> int:
    """``search --chains N`` / ``--tempering`` / delegated ``--seeds N``.

    Steps N SA chains in lockstep in this process, batching each
    generation's steady-state solves through the shared cache.  Chain
    ``c`` is bit-identical to ``search --seed (seed+c)``, so with
    ``campaign_format`` (the ``--seeds`` delegation) the printed
    campaign summary matches the per-seed process path exactly.
    """
    from repro.analysis.campaign import CampaignResult
    from repro.core.population import PopulationCollie

    ladder = None
    if args.tempering:
        from repro.core.annealing import SAParams

        t0 = SAParams().t0
        # Geometric ladder, hottest rung first: each colder rung halves
        # the whole schedule.
        ladder = tuple(t0 * 0.5 ** rung for rung in range(chains))
    driver = PopulationCollie(
        args.subsystem,
        chains=chains,
        budget_hours=args.hours,
        seed=args.seed,
        counter_mode=args.counters,
        use_mfs=not args.no_mfs,
        cache=cache,
        recorder=recorder,
        batch=not args.no_batch,
        batch_probes=args.batch_probes,
        latency=not args.no_latency,
        temperature_ladder=ladder,
        exchange_every=args.exchange_every,
        victim=victim,
        victim_share=getattr(args, "victim_share", 0.5),
    )
    report = driver.run()
    if campaign_format:
        result = CampaignResult(
            approach=_search_approach(args),
            subsystem=args.subsystem,
            budget_hours=args.hours,
            reports=report.reports,
        )
        logger.info(
            f"{result.approach} on subsystem {args.subsystem}: "
            f"{result.seeds} seeds, "
            f"{result.mean_found():.1f} anomalies/seed, "
            f"{sorted(result.union_tags()) or ['-']}"
        )
        for seed, seed_report in zip(
            range(args.seed, args.seed + chains), result.reports
        ):
            logger.info(
                f"  seed {seed}: {len(seed_report.anomalies)} anomalies, "
                f"{seed_report.experiments} experiments"
            )
    else:
        logger.info(report.summary())
    _close_recorder(recorder)
    _close_cache(cache)
    return 0


def _run_search_campaign(args: argparse.Namespace, cache, recorder) -> int:
    """``search --seeds N``: the multi-seed campaign path."""
    from repro.analysis.campaign import run_campaign

    approach = _search_approach(args)
    result = run_campaign(
        approach,
        subsystem=args.subsystem,
        seeds=range(args.seed, args.seed + args.seeds),
        budget_hours=args.hours,
        workers=args.workers,
        cache=cache,
        recorder=recorder,
        batch=not args.no_batch,
        latency=not args.no_latency,
        retry=_retry_policy(args),
    )
    logger.info(
        f"{approach} on subsystem {args.subsystem}: "
        f"{result.seeds} seeds, {result.mean_found():.1f} anomalies/seed, "
        f"{sorted(result.union_tags()) or ['-']}"
    )
    for seed, report in zip(
        range(args.seed, args.seed + args.seeds), result.reports
    ):
        logger.info(f"  seed {seed}: {len(report.anomalies)} anomalies, "
                    f"{report.experiments} experiments")
    if result.executor_stats is not None:
        logger.info(result.executor_stats.describe())
    _close_recorder(recorder)
    _close_cache(cache)
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.core.parallel import ParallelCollie

    cache = _open_cache(args)
    recorder = _open_recorder(args)
    fleet = ParallelCollie(
        args.subsystem,
        machines=args.machines,
        budget_hours=args.hours,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        recorder=recorder,
        batch=not args.no_batch,
        latency=not args.no_latency,
        retry=_retry_policy(args),
        chains=args.chains,
    )
    report = fleet.run()
    logger.info(
        f"fleet of {report.machines} machines on subsystem "
        f"{report.subsystem_name}: {len(report.anomalies)} anomalies, "
        f"{report.total_experiments} experiments, "
        f"{report.elapsed_seconds / 3600:.1f}h wall-clock"
    )
    for index, mfs in enumerate(report.anomalies, 1):
        logger.info(f"  {index}: {mfs.describe()}")
    if fleet.executor_stats is not None:
        logger.info(fleet.executor_stats.describe())
    _close_recorder(recorder)
    _close_cache(cache)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import APPROACHES, run_campaign

    if args.approach not in APPROACHES:
        logger.error(
            f"unknown approach {args.approach!r}; choose from "
            f"{', '.join(sorted(APPROACHES))}"
        )
        return 2
    if args.resume:
        from repro.obs.journal import read_journal_prefix

        try:
            _, tail_error = read_journal_prefix(args.resume)
        except OSError as error:
            logger.error(f"cannot read resume journal {args.resume}: {error}")
            return 2
        except ValueError as error:
            logger.error(f"resume journal is corrupt: {error}")
            return 2
        if tail_error is not None:
            logger.warning(tail_error)
    cache = _open_cache(args)
    recorder = _open_recorder(args)
    result = run_campaign(
        args.approach,
        subsystem=args.subsystem,
        seeds=range(args.seed, args.seed + args.seeds),
        budget_hours=args.hours,
        workers=args.workers,
        cache=cache,
        recorder=recorder,
        batch=not args.no_batch,
        latency=not args.no_latency,
        retry=_retry_policy(args),
        resume_from=args.resume,
    )
    if result.resumed_seeds:
        logger.info(
            f"resumed from {args.resume}: replayed "
            f"{len(result.resumed_seeds)} completed seed(s) "
            f"{list(result.resumed_seeds)}, recomputed "
            f"{result.seeds - len(result.resumed_seeds)}"
        )
    logger.info(
        f"{result.approach} on subsystem {result.subsystem}: "
        f"{result.seeds} seeds x {result.budget_hours:.1f}h, "
        f"{result.mean_found():.1f} anomalies/seed"
    )
    for tag in sorted(result.union_tags()):
        logger.info(f"  found: {tag}")
    if result.executor_stats is not None:
        logger.info(result.executor_stats.describe())
    _close_recorder(recorder)
    _close_cache(cache)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Re-render flight-recorder journals: summary + timeline + trace.

    Accepts several journals; an unreadable one logs a per-file error
    and the rest still render.  The exit code is the worst per-file
    code, so CI catches the failure without losing the good reports.
    """
    paths = args.journal
    if args.trajectory and len(paths) > 1:
        logger.error(
            f"--trajectory exports a single journal's counter trace to "
            f"one CSV; got {len(paths)} journals — run them separately"
        )
        return 2
    payloads: list = []
    worst = 0
    emit_json = getattr(args, "json", False)
    for index, path in enumerate(paths):
        if len(paths) > 1 and not emit_json:
            # Headers would corrupt the machine-readable stream.
            if index:
                logger.info("")
            logger.info(f"=== journal {index + 1}/{len(paths)}: {path}")
        code = _report_one(path, args, payloads)
        if code and len(paths) > 1:
            logger.error(f"journal {path}: report failed (exit {code})")
        worst = max(worst, code)
    if emit_json and payloads:
        # Machine-readable output bypasses the logging pipeline so it
        # stays parseable under --log-json and custom log levels.  A
        # single journal prints its object (the stable format); several
        # print an array.
        out = payloads[0] if len(paths) == 1 else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
    return worst


def _report_one(
    path: str, args: argparse.Namespace, payloads: list
) -> int:
    """Render one journal (appends to ``payloads`` under ``--json``)."""
    from repro.analysis.figures import counter_trace
    from repro.obs import (
        journal_summary,
        read_journal_prefix,
        reports_from_records,
        validate_journal,
    )

    try:
        records, tail_error = read_journal_prefix(path)
    except OSError as error:
        logger.error(f"cannot read journal {path}: {error}")
        return 2
    except ValueError as error:
        logger.error(f"{error}")
        return 2
    if tail_error is not None:
        logger.warning(
            f"{tail_error} — rendering the valid prefix "
            f"({len(records)} records)"
        )
    errors = validate_journal(records)
    if errors:
        for message in errors[:10]:
            logger.error(message)
        if len(errors) > 10:
            logger.error(f"... and {len(errors) - 10} more")
        logger.error(
            f"journal {path} failed schema validation "
            f"({len(errors)} error(s))"
        )
        return 2
    shape = journal_summary(records)
    if getattr(args, "json", False):
        from repro.analysis.journaldiff import journal_metrics
        from repro.analysis.serialize import report_to_dict

        payloads.append({
            "journal": str(path),
            "summary": shape,
            "metrics": journal_metrics(records),
            "runs": [
                report_to_dict(report)
                for report in reports_from_records(records)
            ],
        })
        return 0
    logger.info(
        f"journal {path}: {shape['records']} records, "
        f"{shape['runs']} run(s), {shape['experiments']} experiments, "
        f"{shape['anomalies']} anomalies, {shape['skips']} skips, "
        f"{shape['transitions']} SA transitions, "
        f"{shape['cache_events']} cache events"
    )
    if shape["retries"] or shape["quarantines"]:
        logger.info(
            f"resilience: {shape['retries']} retried attempt(s), "
            f"{shape['quarantines']} quarantined host(s)"
        )
    _report_isolation(records)
    if shape["crashed_runs"]:
        logger.warning(
            f"{shape['crashed_runs']} of {shape['runs']} run(s) are "
            f"partial (no run_end record) — this campaign crashed or is "
            f"still in flight; resume it with 'repro campaign --resume "
            f"{path}'"
        )
    completeness = _run_completeness(records)
    reports = reports_from_records(records)
    for index, report in enumerate(reports, 1):
        logger.info("")
        crashed = "" if completeness[index - 1] else " [CRASHED — partial]"
        logger.info(f"run {index}:{crashed} {report.summary()}")
        hits = sorted(
            report.first_hit_times().items(), key=lambda item: item[1]
        )
        if hits:
            logger.info("  anomaly timeline (first anomalous hit per tag):")
            for tag, seconds in hits:
                logger.info(f"    {seconds / 3600:8.2f}h  {tag}")
        latency_line = _latency_line(
            [e.latency for e in report.events if e.latency is not None]
        )
        if latency_line is not None:
            logger.info(f"  {latency_line}")
    if args.counter:
        events = [event for report in reports for event in report.events]
        trace = counter_trace("journal", events, args.counter)
        if not trace.hours:
            logger.warning(
                f"counter {args.counter!r} never observed in {path}"
            )
            return 1
        if args.trajectory:
            _write_trajectory(args.trajectory, reports, args.counter)
            logger.info(
                f"counter trajectory ({len(trace.hours)} points) "
                f"written to {args.trajectory}"
            )
        else:
            logger.info("")
            logger.info(f"trace of {args.counter} (normalised, 24 buckets):")
            for hour, value in trace.bucketed(24):
                bar = "#" * int(round(value * 40))
                logger.info(f"  {hour:6.2f}h |{bar}")
    return 0


def _report_isolation(records) -> None:
    """Log the co-run context of an isolation journal (no-op for solo)."""
    isolation = [r for r in records if r.get("t") == "isolation"]
    if not isolation:
        return
    from repro.analysis.journaldiff import isolation_metrics
    from repro.analysis.serialize import workload_from_dict

    for record in isolation:
        victim = workload_from_dict(record["victim"])
        logger.info(
            f"isolation run: victim {victim.summary()} — "
            f"share {record['victim_share']:g}, alone "
            f"{record['alone_gbps']:.1f} Gbps / p99 "
            f"{record['alone_p99_us']:.2f} us"
        )
    metrics = isolation_metrics(records)
    if metrics["isolation_experiments"]:
        logger.info(
            f"  co-run experiments: {metrics['isolation_experiments']}, "
            f"worst interference {metrics['interference_min']:.2f} of "
            f"fair share"
        )


def _latency_line(summaries) -> Optional[str]:
    """One-line per-run aggregate of per-experiment latency summaries.

    Each experiment's latency record already carries its own
    p50/p90/p99; across a run the medians of those percentiles describe
    the typical modeled WR, and the worst inflation names the run's
    closest approach to (or crossing of) the tail-latency trigger.
    """
    if not summaries:
        return None
    p50 = float(np.median([s["p50_us"] for s in summaries]))
    p90 = float(np.median([s["p90_us"] for s in summaries]))
    p99 = float(np.median([s["p99_us"] for s in summaries]))
    worst = max(float(s["inflation"]) for s in summaries)
    return (
        f"latency p50/p90/p99 {p50:.1f}/{p90:.1f}/{p99:.1f} us "
        f"(medians over {len(summaries)} experiments, "
        f"worst inflation {worst:.2f}x)"
    )


def _run_completeness(records) -> list:
    """Per-run completion flags (False = no run_end).

    Delegates the run grouping to :func:`run_records` so the flags line
    up with ``reports_from_records`` on population journals, where N
    chains' runs interleave in one file.
    """
    from repro.obs import run_records

    return [
        any(record.get("t") == "run_end" for record in run)
        for run in run_records(records)
    ]


def _cmd_journal(args: argparse.Namespace) -> int:
    """``journal verify``: machine-checkable journal health."""
    from repro.obs import VERIFY_OK, verify_journal

    code, messages = verify_journal(args.journal)
    for message in messages:
        if code == VERIFY_OK:
            logger.info(message)
        else:
            logger.warning(message)
    verdict = {0: "complete", 1: "incomplete (resumable)", 2: "corrupt"}
    logger.info(f"journal {args.journal}: {verdict[code]} (exit {code})")
    return code


def _read_journal_or_none(path: str):
    """Read a journal's valid prefix, logging read errors (None = fail)."""
    from repro.obs import read_journal_prefix

    try:
        records, tail_error = read_journal_prefix(path)
    except OSError as error:
        logger.error(f"cannot read journal {path}: {error}")
        return None
    except ValueError as error:
        logger.error(f"journal {path} is corrupt: {error}")
        return None
    if tail_error is not None:
        logger.warning(
            f"{tail_error} — using the valid prefix "
            f"({len(records)} records)"
        )
    return records


def _cmd_journal_diff(args: argparse.Namespace) -> int:
    """``journal diff``: gate a candidate journal against a baseline."""
    from repro.analysis.journaldiff import (
        describe_unknown_kinds,
        diff_journals,
        render_diff,
    )

    baseline = _read_journal_or_none(args.baseline)
    candidate = _read_journal_or_none(args.candidate)
    if baseline is None or candidate is None:
        return 2
    for path, records in (
        (args.baseline, baseline), (args.candidate, candidate)
    ):
        for line in describe_unknown_kinds(records):
            logger.warning(f"{path}: {line}")
    # An empty (or truncated-to-zero-records) journal has no metrics to
    # compare: diffing it would either crash or — worse — pass silently
    # with every metric "absent in both".  That is unreadable input,
    # not a clean diff: exit 2, like any other unreadable journal.
    unusable = [
        path
        for path, records in (
            (args.baseline, baseline), (args.candidate, candidate)
        )
        if not records
    ]
    if unusable:
        for path in unusable:
            logger.error(
                f"journal {path} contains no records — nothing to diff"
            )
        return 2
    result = diff_journals(
        baseline, candidate, tolerance=args.baseline_tolerance
    )
    logger.info(f"baseline:  {args.baseline}")
    logger.info(f"candidate: {args.candidate}")
    logger.info(render_diff(result))
    return 0 if result.ok else 1


def _cmd_coverage(args: argparse.Namespace) -> int:
    """``coverage``: render a journal's workload-space occupancy maps."""
    from repro.obs import coverage_from_records, render_latency_panel

    records = _read_journal_or_none(args.journal)
    if records is None:
        return 2
    trackers = coverage_from_records(records)
    if not trackers:
        logger.warning(f"no runs found in {args.journal}")
        return 1
    for index, tracker in enumerate(trackers, 1):
        if len(trackers) > 1:
            logger.info(f"run {index}:")
        logger.info(tracker.render())
        logger.info("")
    panel = render_latency_panel(records)
    if panel is not None:
        logger.info(panel)
    from repro.analysis.journaldiff import isolation_metrics

    metrics = isolation_metrics(records)
    if metrics["isolation_experiments"]:
        logger.info(
            f"co-run coverage: {metrics['isolation_experiments']} "
            f"experiments carried victim interference, worst "
            f"{metrics['interference_min']:.2f} of fair share"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: render a journal's span profile / export a trace."""
    from repro.obs import (
        chrome_trace,
        events_from_records,
        render_span_table,
    )

    records = _read_journal_or_none(args.journal)
    if records is None:
        return 2
    events = events_from_records(records)
    if not events:
        logger.warning(
            f"no spans recorded in {args.journal} "
            f"(was the run profiled? use --profile)"
        )
        return 1
    logger.info(render_span_table(events))
    if args.trace_out:
        trace = chrome_trace(events)
        with open(args.trace_out, "w") as handle:
            json.dump(trace, handle)
        logger.info(
            f"Chrome trace ({len(trace['traceEvents'])} events) written "
            f"to {args.trace_out} — open in chrome://tracing or Perfetto"
        )
    return 0


def _write_trajectory(path: str, reports, counter: str) -> None:
    """Raw per-event CSV of one counter across every run in the journal.

    Values are written via ``repr`` (shortest round-tripping float
    form), so the exported trajectory is bit-identical to the in-memory
    event snapshots.
    """
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["run", "time_seconds", "value", "kind", "symptom"]
        )
        for run, report in enumerate(reports, 1):
            for event in report.events:
                if counter in event.counters:
                    value = float(event.counters[counter])
                elif event.counter == counter:
                    value = float(event.counter_value)
                else:
                    continue
                writer.writerow(
                    [run, repr(float(event.time_seconds)), repr(value),
                     event.kind, event.symptom]
                )


def _stats_on_journal(path: str) -> Optional[int]:
    """``stats`` pointed at a run journal: summarise it instead.

    Returns None when the file is not a journal (caller falls through
    to its cache-store error path).  Partial/crashed runs are surfaced
    explicitly — a truncated journal must never read as a finished one.
    """
    from repro.obs import journal_summary, read_journal_prefix, run_records

    try:
        records, tail_error = read_journal_prefix(path)
    except (OSError, ValueError):
        return None
    if not records or not all(
        isinstance(r, dict) and "t" in r and "v" in r for r in records
    ):
        return None
    shape = journal_summary(records)
    logger.info(
        f"{path} is a run journal: {shape['records']} records, "
        f"{shape['complete_runs']} complete run(s), "
        f"{shape['experiments']} experiments, "
        f"{shape['anomalies']} anomalies, {shape['retries']} retries, "
        f"{shape['quarantines']} quarantines"
    )
    for index, run in enumerate(run_records(records), 1):
        wires = [
            float(r["counters"].get("tx_bytes_per_sec", 0.0)) * 8.0 / 1e9
            for r in run if r.get("t") == "experiment"
        ]
        if not wires:
            continue
        latency = _latency_line(
            [r for r in run if r.get("t") == "latency"]
        ) or "latency: - (no latency records)"
        logger.info(
            f"  run {index}: mean tx {float(np.mean(wires)):.1f} Gbps, "
            f"{latency}"
        )
    if tail_error is not None:
        logger.warning(tail_error)
    if shape["crashed_runs"]:
        logger.warning(
            f"{shape['crashed_runs']} run(s) are partial (crashed or in "
            f"flight) — resume with 'repro campaign --resume {path}'"
        )
    return 1 if (shape["crashed_runs"] or tail_error) else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: one or more cache stores (or journals), per-file errors.

    One unreadable file never hides the others' statistics; the exit
    code is the worst per-file code.
    """
    worst = 0
    for index, path in enumerate(args.cache):
        if len(args.cache) > 1:
            if index:
                logger.info("")
            logger.info(f"=== {path}")
        worst = max(worst, _stats_one(path))
    return worst


def _stats_one(path: str) -> int:
    from repro.core.evalcache import EvalCache, describe_stats

    try:
        stats = EvalCache.load_stats(path)
    except FileNotFoundError:
        logger.info(f"no cache store at {path} (nothing cached yet)")
        return 0
    except (ValueError, AttributeError) as error:  # corrupt / wrong shape
        journal_code = _stats_on_journal(path)
        if journal_code is not None:
            return journal_code
        logger.error(f"cannot read cache store {path}: {error}")
        return 1
    lookups = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
    if not stats.get("entries") and not lookups:
        logger.info(
            f"cache store {path} is empty (no entries, no lookups)"
        )
        return 0
    logger.info(f"cache store: {path}")
    logger.info(describe_stats(stats))
    return 0


def _matrix_spec_from_args(args: argparse.Namespace):
    """Build the canary MatrixSpec the CLI flags describe."""
    from repro.canary import MatrixSpec

    subsystems = tuple(args.subsystems.upper())
    unknown = sorted(set(subsystems) - set("ABCDEFGH"))
    if unknown:
        raise ValueError(
            f"unknown subsystem(s) {', '.join(unknown)} "
            f"(choose letters from A-H)"
        )
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    return MatrixSpec(
        subsystems=subsystems,
        seeds=seeds,
        budget_hours=args.hours,
        counter_mode=args.counters,
    )


def _cmd_canary_record(args: argparse.Namespace) -> int:
    """``canary record``: run the matrix, commit the baseline corpus."""
    from repro.canary import record_corpus

    try:
        spec = _matrix_spec_from_args(args)
    except ValueError as error:
        logger.error(str(error))
        return 2
    manifest = record_corpus(spec, args.corpus, progress=logger.info)
    logger.info(
        f"corpus recorded to {args.corpus}: {len(manifest['cells'])} "
        f"cell(s) ({len(spec.subsystems)} subsystem(s) x "
        f"{len(spec.seeds)} seed(s) x {spec.budget_hours:g}h), "
        f"schema v{manifest['schema_version']}, "
        f"code {manifest['code_fingerprint'][:12]}"
    )
    return 0


def _cmd_canary_check(args: argparse.Namespace) -> int:
    """``canary check``: drift gate + hard invariants vs the corpus."""
    import tempfile

    from repro.canary import DriftGates, canary_check, render_check

    gates = DriftGates(
        median_tolerance=args.median_tolerance,
        spread_factor=args.spread_factor,
        shape_tolerance=args.shape_tolerance,
    )

    def run(fresh_dir: str) -> int:
        result = canary_check(
            args.corpus,
            fresh_dir,
            gates=gates,
            attempts=args.attempts,
            skip_invariants=args.skip_invariants,
            progress=logger.info if args.verbose else None,
        )
        logger.info(render_check(result))
        if not result.ok and args.fresh_dir:
            logger.info(f"fresh journals kept in {args.fresh_dir}")
        return result.exit_code

    if args.fresh_dir:
        return run(args.fresh_dir)
    with tempfile.TemporaryDirectory(prefix="canary-fresh-") as fresh_dir:
        return run(fresh_dir)


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.monitor import AnomalyMonitor
    from repro.hardware.model import SteadyStateModel
    from repro.hardware.subsystems import get_subsystem
    from repro.workloads.appendix import APPENDIX_SETTINGS

    rng = np.random.default_rng(args.seed)
    failures = 0
    for setting in APPENDIX_SETTINGS:
        subsystem = get_subsystem(setting.subsystem)
        measurement = SteadyStateModel(subsystem).evaluate(
            setting.workload, rng
        )
        verdict = AnomalyMonitor(subsystem).classify(measurement)
        ok = (
            setting.expected_tag in measurement.tags
            and verdict.symptom == setting.expected_symptom
        )
        failures += not ok
        logger.info(
            f"#{setting.number:2d} ({setting.subsystem}) "
            f"{'ok ' if ok else 'MISS'} expected "
            f"{setting.expected_tag}/{setting.expected_symptom}, observed "
            f"{','.join(measurement.tags) or '-'}/{verdict.symptom}"
        )
    logger.info(f"\n{18 - failures}/18 reproduced")
    return 1 if failures else 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.analysis.serialize import load_anomalies, workload_from_dict
    from repro.core.mfs import match_any

    anomalies = load_anomalies(args.report)
    with open(args.workload) as handle:
        workload = workload_from_dict(json.load(handle))
    matched = match_any(anomalies, workload)
    logger.info(f"workload: {workload.summary()}")
    if matched is None:
        logger.info("no known anomaly region covers this workload")
        return 0
    logger.info("matches a known anomaly; break one of these conditions:")
    logger.info(f"  {matched.describe()}")
    return 2


def _cmd_isolation(args: argparse.Namespace) -> int:
    """``isolation``: the adversarial-neighbor catalog (Table 2's twin).

    Runs one quick-budget co-run search per requested subsystem against
    the pinned victim, verifies every minimized attacker through the
    co-run reproducer, and prints the catalog.  Exit 1 when a subsystem
    yielded no reproduced isolation anomaly — the catalog's guarantee.
    """
    from repro.analysis import render_table
    from repro.analysis.isolation import (
        ISOLATION_COLUMNS,
        catalog_findings,
        catalog_rows,
        default_victim,
        isolation_search,
    )

    subsystems = tuple(args.subsystems.upper())
    unknown = sorted(set(subsystems) - set("ABCDEFGH"))
    if unknown:
        logger.error(
            f"unknown subsystem(s) {', '.join(unknown)} "
            f"(choose letters from A-H)"
        )
        return 2
    victim = _victim_from_args(args) or default_victim()
    recorder = _open_recorder(args)
    findings = []
    bare: list[str] = []
    for letter in subsystems:
        report = isolation_search(
            letter, victim=victim, victim_share=args.victim_share,
            budget_hours=args.hours, seed=args.seed, recorder=recorder,
        )
        verified = catalog_findings(report, victim, args.victim_share)
        findings.extend(verified)
        reproduced = sum(f.reproduced for f in verified)
        logger.info(
            f"subsystem {letter}: {len(verified)} isolation anomaly(ies), "
            f"{reproduced} reproduced, {report.experiments} experiments"
        )
        if not reproduced:
            bare.append(letter)
    logger.info("")
    logger.info(f"victim: {victim.summary()} (share {args.victim_share:g})")
    if findings:
        logger.info(render_table(catalog_rows(findings), ISOLATION_COLUMNS))
    _close_recorder(recorder)
    if bare:
        logger.warning(
            f"no reproduced isolation anomaly on subsystem(s) "
            f"{', '.join(bare)}"
        )
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top JOURNAL...``: live terminal dashboard.

    Follows the journals with the telemetry plane's tail-follower and
    re-renders every ``--interval`` seconds; ``--once`` prints a single
    frame (no escape sequences) and exits — the scriptable form.  The
    optional ``--baseline`` journal (gzip-transparent, e.g. a canary
    corpus cell) adds drift rows against its gated metrics.
    """
    import time as _time

    from repro.obs import CampaignAggregator, render_dashboard
    from repro.obs.dashboard import CLEAR, load_baseline_metrics

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline_metrics(args.baseline)
        except (OSError, ValueError) as error:
            logger.error(
                f"cannot read baseline journal {args.baseline}: {error}"
            )
            return 2
    aggregator = CampaignAggregator(
        args.journal, stale_after=args.stale_after
    )
    while True:
        aggregator.refresh()
        frame = render_dashboard(
            aggregator.snapshot(),
            chains=aggregator.chain_diagnostics(),
            baseline=baseline,
            baseline_path=args.baseline,
        )
        # Frames bypass the logging pipeline (like --json surfaces):
        # a dashboard interleaved with log timestamps is unreadable.
        if args.once:
            print(frame, end="")
            return 0
        print(CLEAR + frame, end="", flush=True)
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, table1_rows

    logger.info(render_table(table1_rows()))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, table2_rows
    from repro.analysis.tables import TABLE2_COLUMNS

    logger.info(render_table(table2_rows(), columns=TABLE2_COLUMNS))
    return 0


def _add_observability_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--journal", metavar="JOURNAL.jsonl",
        help="write a structured JSONL run journal (see 'repro report')",
    )
    subparser.add_argument(
        "--progress", type=_positive_int, default=0, metavar="N",
        help="print a live progress line every N experiments",
    )
    subparser.add_argument(
        "--coverage", action="store_true",
        help="track 4-D workload-space coverage and print the "
             "per-dimension occupancy tables at the end",
    )
    subparser.add_argument(
        "--profile", action="store_true",
        help="profile wall-clock spans and print the self-time table "
             "at the end (journaled as schema-v3 'spans' records)",
    )
    subparser.add_argument(
        "--export-metrics", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP on 127.0.0.1:PORT "
             "(/metrics Prometheus text, /status JSON; PORT 0 picks an "
             "ephemeral port); with --journal, also journals schema-v7 "
             "heartbeat records and aggregates live rollups from it",
    )


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed/hung campaign task up to N times "
             "(turns on fault-tolerant execution with host quarantine)",
    )
    subparser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock timeout; an expired task is retried",
    )
    subparser.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base of the deterministic exponential retry backoff "
             "(default 0: account for the schedule without sleeping)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collie (NSDI 2022) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default="info",
        help="logging threshold (INFO and below go to stdout, "
             "WARNING and above to stderr)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log lines as JSON objects",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run Collie on one subsystem")
    search.add_argument("subsystem", choices=list("ABCDEFGH"))
    search.add_argument("--hours", type=float, default=10.0)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--counters", choices=("diag", "perf"),
                        default="diag")
    search.add_argument("--no-mfs", action="store_true",
                        help="plain SA baseline (Figure 5 ablation)")
    search.add_argument("--output", metavar="REPORT.json",
                        help="save the report as JSON")
    search.add_argument("--recipes", action="store_true",
                        help="print a vendor reproduction recipe per anomaly")
    search.add_argument("--seeds", type=_positive_int, default=1,
                        help="run a campaign over this many seeds "
                             "(starting at --seed); without --workers or "
                             "retry flags this runs as one lockstep "
                             "population (same reports, batched solves)")
    search.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for multi-seed campaigns")
    search.add_argument("--chains", type=_positive_int, default=1,
                        help="population size: step N SA chains (seeds "
                             "--seed..--seed+N-1) in lockstep with "
                             "whole-generation batched solves")
    search.add_argument("--tempering", action="store_true",
                        help="parallel tempering: run --chains rungs on a "
                             "geometric temperature ladder with "
                             "deterministic replica exchange")
    search.add_argument("--exchange-every", type=_positive_int, default=25,
                        metavar="N",
                        help="generations between replica-exchange sweeps "
                             "(with --tempering)")
    search.add_argument("--cache", metavar="PATH",
                        help="memoize evaluations in this JSON store")
    search.add_argument("--no-batch", action="store_true",
                        help="route evaluation through the scalar code "
                             "path (disable S31 batching)")
    search.add_argument("--no-latency", action="store_true",
                        help="disable the tail-latency signal: no latency "
                             "journal records and no latency-inflation "
                             "verdicts (bit-identical to pre-latency runs)")
    search.add_argument("--victim", metavar="SPEC",
                        help="adversarial-neighbor mode: pin this victim "
                             "workload on the testbed and search the "
                             "attacker that degrades it; SPEC is a preset "
                             "('small-message') or comma-separated "
                             "key=value overrides of it, e.g. "
                             "'num_qps=64,msg_sizes_bytes=512;4096'")
    search.add_argument("--victim-share", type=float, default=0.5,
                        metavar="FRACTION",
                        help="victim's fair bandwidth share of the "
                             "bottleneck links (default 0.5)")
    search.add_argument("--batch-probes", action="store_true",
                        help="pre-sample and batch the counter-ranking "
                             "probes (deterministic per seed, but a "
                             "different RNG interleaving than scalar)")
    _add_observability_flags(search)
    _add_resilience_flags(search)
    search.set_defaults(func=_cmd_search)

    parallel = sub.add_parser("parallel", help="fleet search (§8 extension)")
    parallel.add_argument("subsystem", choices=list("ABCDEFGH"))
    parallel.add_argument("--machines", type=int, default=3)
    parallel.add_argument("--hours", type=float, default=10.0)
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument("--workers", type=_positive_int, default=1,
                          help="worker processes for the machine fleet")
    parallel.add_argument("--chains", type=_positive_int, default=1,
                          help="SA chains per machine, stepped as one "
                               "lockstep population over the machine's "
                               "counter share")
    parallel.add_argument("--cache", metavar="PATH",
                          help="memoize evaluations in this JSON store")
    parallel.add_argument("--no-batch", action="store_true",
                          help="route evaluation through the scalar code "
                               "path (disable S31 batching)")
    parallel.add_argument("--no-latency", action="store_true",
                          help="disable the tail-latency signal on every "
                               "machine of the fleet")
    _add_observability_flags(parallel)
    _add_resilience_flags(parallel)
    parallel.set_defaults(func=_cmd_parallel)

    campaign = sub.add_parser(
        "campaign", help="multi-seed campaign for one approach"
    )
    campaign.add_argument("approach",
                          help="approach name (e.g. collie, random, genetic)")
    campaign.add_argument("--subsystem", choices=list("ABCDEFGH"),
                          default="F")
    campaign.add_argument("--seeds", type=_positive_int, default=3)
    campaign.add_argument("--seed", type=int, default=1,
                          help="first seed of the campaign")
    campaign.add_argument("--hours", type=float, default=10.0)
    campaign.add_argument("--workers", type=_positive_int, default=1)
    campaign.add_argument("--cache", metavar="PATH",
                          help="memoize evaluations in this JSON store")
    campaign.add_argument("--no-batch", action="store_true",
                          help="route evaluation through the scalar code "
                               "path (disable S31 batching)")
    campaign.add_argument("--no-latency", action="store_true",
                          help="disable the tail-latency signal for every "
                               "seed of the campaign")
    campaign.add_argument("--resume", metavar="JOURNAL.jsonl",
                          help="resume an interrupted campaign: replay "
                               "this journal's completed runs and "
                               "recompute only the missing seeds")
    _add_observability_flags(campaign)
    _add_resilience_flags(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    report = sub.add_parser(
        "report",
        help="re-render a run journal written by --journal",
    )
    report.add_argument("journal", metavar="JOURNAL.jsonl", nargs="+",
                        help="JSONL journal(s) from 'search --journal'; "
                             "an unreadable file is reported and the "
                             "rest still render")
    report.add_argument("--counter", metavar="NAME",
                        help="plot/export this counter's trajectory")
    report.add_argument("--trajectory", metavar="OUT.csv",
                        help="export the --counter trajectory as CSV")
    report.add_argument("--json", action="store_true",
                        help="emit the summary, observatory metrics and "
                             "reconstructed runs as machine-readable JSON")
    report.set_defaults(func=_cmd_report)

    coverage = sub.add_parser(
        "coverage",
        help="render workload-space coverage maps from a run journal",
    )
    coverage.add_argument("journal", metavar="JOURNAL.jsonl",
                          help="JSONL journal from 'search --journal'")
    coverage.set_defaults(func=_cmd_coverage)

    profile = sub.add_parser(
        "profile",
        help="render the span self-time profile of a journal "
             "(written by --profile)",
    )
    profile.add_argument("journal", metavar="JOURNAL.jsonl",
                         help="JSONL journal from 'search --journal "
                              "--profile'")
    profile.add_argument("--trace-out", metavar="TRACE.json",
                         help="export Chrome trace-event JSON "
                              "(chrome://tracing / Perfetto)")
    profile.set_defaults(func=_cmd_profile)

    journal = sub.add_parser(
        "journal",
        help="verify a run journal (exit 0 complete, 1 resumable, "
             "2 corrupt)",
    )
    journal_actions = journal.add_subparsers(
        dest="journal_command", required=True
    )
    journal_verify = journal_actions.add_parser(
        "verify",
        help="check schema validity and run completeness of a journal",
    )
    journal_verify.add_argument("journal", metavar="JOURNAL.jsonl",
                                help="JSONL journal to verify")
    journal_verify.set_defaults(func=_cmd_journal)
    journal_diff = journal_actions.add_parser(
        "diff",
        help="diff two journals for search-quality regressions "
             "(exit 0 clean, 1 regression, 2 unreadable)",
    )
    journal_diff.add_argument("baseline", metavar="BASELINE.jsonl",
                              help="known-good baseline journal")
    journal_diff.add_argument("candidate", metavar="CANDIDATE.jsonl",
                              help="candidate journal to gate")
    journal_diff.add_argument(
        "--baseline-tolerance", type=float, default=0.05,
        metavar="FRACTION",
        help="relative tolerance on gated metrics before a worse value "
             "counts as a regression (default 0.05)",
    )
    journal_diff.set_defaults(func=_cmd_journal_diff)

    stats = sub.add_parser(
        "stats", help="print statistics from a saved evaluation cache"
    )
    stats.add_argument("cache", metavar="PATH", nargs="+",
                       help="JSON store(s) written by --cache; an "
                            "unreadable file is reported and the rest "
                            "still print")
    stats.set_defaults(func=_cmd_stats)

    canary = sub.add_parser(
        "canary",
        help="record or check the continuous-canary baseline corpus "
             "(see docs/CANARY.md)",
    )
    canary_actions = canary.add_subparsers(
        dest="canary_command", required=True
    )

    def _add_matrix_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--corpus", default="canary/corpus", metavar="DIR",
            help="baseline corpus directory (default: canary/corpus)",
        )

    canary_record = canary_actions.add_parser(
        "record",
        help="run the campaign matrix and commit it as the baseline "
             "corpus",
    )
    _add_matrix_flags(canary_record)
    canary_record.add_argument(
        "--subsystems", default="ABCDEFGH", metavar="LETTERS",
        help="subsystems to cover, as a string of Table 1 letters "
             "(default: ABCDEFGH)",
    )
    canary_record.add_argument(
        "--seeds", type=_positive_int, default=3, metavar="N",
        help="seed population per subsystem (default: 3)",
    )
    canary_record.add_argument(
        "--seed-base", type=int, default=1, metavar="SEED",
        help="first seed of the population (default: 1)",
    )
    canary_record.add_argument(
        "--hours", type=float, default=1.0,
        help="simulated budget per cell (default: 1.0)",
    )
    canary_record.add_argument(
        "--counters", choices=("diag", "perf"), default="diag",
    )
    canary_record.set_defaults(func=_cmd_canary_record)

    canary_check_parser = canary_actions.add_parser(
        "check",
        help="re-run the corpus's matrix and gate the populations "
             "(exit 0 clean, 1 drift/violation, 2 corpus unreadable)",
    )
    _add_matrix_flags(canary_check_parser)
    canary_check_parser.add_argument(
        "--fresh-dir", metavar="DIR",
        help="keep the re-run journals here (CI failure artifact); "
             "default: a temporary directory, removed afterwards",
    )
    canary_check_parser.add_argument(
        "--median-tolerance", type=float, default=0.10, metavar="FRACTION",
        help="relative per-metric median shift that gates (both "
             "directions; default 0.10)",
    )
    canary_check_parser.add_argument(
        "--spread-factor", type=float, default=2.0, metavar="FACTOR",
        help="allowed inflation of the seed population's IQR "
             "(default 2.0)",
    )
    canary_check_parser.add_argument(
        "--shape-tolerance", type=float, default=0.25, metavar="FRACTION",
        help="total-variation distance allowed between MFS shape "
             "multisets (default 0.25)",
    )
    canary_check_parser.add_argument(
        "--attempts", type=_positive_int, default=3, metavar="N",
        help="reproduction attempts per corpus MFS in the invariant "
             "pass (default 3)",
    )
    canary_check_parser.add_argument(
        "--skip-invariants", action="store_true",
        help="drift gate only (skip the per-MFS reproduction pass)",
    )
    canary_check_parser.add_argument(
        "--verbose", action="store_true",
        help="log per-cell progress while re-running the matrix",
    )
    canary_check_parser.set_defaults(func=_cmd_canary_check)

    isolation = sub.add_parser(
        "isolation",
        help="adversarial-neighbor catalog: per-subsystem co-run "
             "searches against a pinned victim, every minimized "
             "attacker verified by replay (exit 1 when a subsystem "
             "yields no reproduced isolation anomaly)",
    )
    isolation.add_argument(
        "--subsystems", default="ABCDEFGH", metavar="LETTERS",
        help="subsystems to catalog, as a string of Table 1 letters "
             "(default: ABCDEFGH)",
    )
    isolation.add_argument("--hours", type=float, default=0.3,
                           help="simulated budget per subsystem "
                                "(default 0.3)")
    isolation.add_argument("--seed", type=int, default=3)
    isolation.add_argument("--victim", metavar="SPEC",
                           help="victim workload (same SPEC as "
                                "'search --victim'; default: the "
                                "small-message preset)")
    isolation.add_argument("--victim-share", type=float, default=0.5,
                           metavar="FRACTION",
                           help="victim's fair bandwidth share "
                                "(default 0.5)")
    isolation.add_argument("--journal", metavar="JOURNAL.jsonl",
                           help="write every subsystem's co-run search "
                                "into one JSONL flight-recorder journal")
    isolation.set_defaults(func=_cmd_isolation)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over one or more run journals",
        description="Follow actively-written journals and render a "
                    "live telemetry dashboard: progress, per-worker "
                    "heartbeat liveness, per-chain SA rows, the anomaly "
                    "timeline tail, and drift vs an optional baseline.",
    )
    top.add_argument("journal", metavar="JOURNAL.jsonl", nargs="+",
                     help="journal file(s) to follow (may not exist yet)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no ANSI clears)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh period of the live loop (default 2)")
    top.add_argument("--baseline", metavar="BASELINE.jsonl",
                     help="journal (or .jsonl.gz corpus cell) whose "
                          "gated metrics the drift rows compare against")
    top.add_argument("--stale-after", type=float, default=30.0,
                     metavar="SECONDS",
                     help="heartbeat age beyond which a worker is "
                          "reported STALE (default 30)")
    top.set_defaults(func=_cmd_top)

    replay = sub.add_parser(
        "replay", help="replay the 18 Appendix A trigger settings"
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.set_defaults(func=_cmd_replay)

    diagnose = sub.add_parser(
        "diagnose",
        help="match a workload JSON against a saved report's MFS set",
    )
    diagnose.add_argument("report", help="JSON report from 'search --output'")
    diagnose.add_argument("workload", help="workload JSON file")
    diagnose.set_defaults(func=_cmd_diagnose)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("table2", help="print Table 2").set_defaults(
        func=_cmd_table2
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs.logging import setup_logging

    args = build_parser().parse_args(argv)
    setup_logging(level=args.log_level, json_format=args.log_json)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
