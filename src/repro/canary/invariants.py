"""Hard behavioural invariants over the corpus's anomalies.

The drift gate asks "did the *population statistics* move?"; this pass
asks the stronger, non-statistical questions that must hold exactly:

1. every corpus journal still **validates** under the current schema
   (old corpora keep working across schema versions — the validator
   accepts every version in ``SUPPORTED_VERSIONS``);
2. every journaled MFS is **self-consistent**: its witness lies inside
   its own region (``mfs.matches(witness)``), and its interval ladder
   is sound — ``low <= high``, and bounds inside the subsystem's
   actual ladder range (a bound outside the ladder can never exclude a
   point, so it silently weakens the search's skip test);
3. every journaled MFS still **reproduces**: replaying its witness on
   a fresh testbed re-triggers the recorded symptom through
   :func:`repro.core.reproducer.reproduce_mfs`.

A violation of any of these is a correctness bug, not drift — it gates
regardless of how the population statistics look.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.serialize import mfs_from_dict
from repro.canary.corpus import CorpusCell
from repro.core.reproducer import REPRODUCE_ATTEMPTS, reproduce_mfs
from repro.core.space import ORDERED_DIMENSIONS, SearchSpace
from repro.obs.schema import validate_journal


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One broken hard invariant, pinned to its corpus cell."""

    cell: str
    kind: str  #: "schema" | "mfs-soundness" | "reproduction"
    detail: str

    def describe(self) -> str:
        return f"INVARIANT [{self.kind}] cell {self.cell}: {self.detail}"


def _ladder_range(
    space: SearchSpace, dimension: str
) -> Optional[tuple[float, float]]:
    """(min, max) of the ladder behind one interval dimension."""
    if dimension in ORDERED_DIMENSIONS:
        ladder = space.ordered_choices(dimension)
    elif dimension == "avg_msg":
        ladder = space.msg_size_choices
    else:
        return None
    return float(min(ladder)), float(max(ladder))


def mfs_soundness_errors(mfs, space: SearchSpace) -> list[str]:
    """Ladder/consistency defects of one MFS (empty list = sound)."""
    errors: list[str] = []
    for cond in mfs.intervals:
        if (
            cond.low is not None
            and cond.high is not None
            and cond.low > cond.high
        ):
            errors.append(
                f"interval {cond.dimension}: low {cond.low:g} > "
                f"high {cond.high:g}"
            )
        bounds = _ladder_range(space, cond.dimension)
        if bounds is not None:
            lo, hi = bounds
            for label, value in (("low", cond.low), ("high", cond.high)):
                if value is not None and not (lo <= value <= hi):
                    errors.append(
                        f"interval {cond.dimension}: {label} bound "
                        f"{value:g} outside ladder [{lo:g}, {hi:g}]"
                    )
    for cond in mfs.memberships:
        if not cond.allowed:
            errors.append(
                f"membership {cond.dimension}: empty allowed set"
            )
    if not mfs.matches(mfs.witness):
        errors.append("witness does not match its own MFS region")
    return errors


def cell_victim(records) -> tuple:
    """``(victim, victim_share)`` from a journal's isolation preamble.

    Isolation journals (schema v6) open with an ``isolation`` record
    naming the pinned victim; their anomalies only reproduce in co-run
    mode, so the reproduction invariant must replay them against the
    same victim.  Solo journals yield ``(None, 0.5)`` and the replay
    path is bit-identical to the pre-isolation pass.
    """
    from repro.analysis.serialize import workload_from_dict

    for record in records:
        if record.get("t") == "isolation":
            return (
                workload_from_dict(record["victim"]),
                float(record["victim_share"]),
            )
    return None, 0.5


def check_cell(
    cell: CorpusCell, attempts: int = REPRODUCE_ATTEMPTS
) -> list[InvariantViolation]:
    """Run all hard invariants over one corpus cell."""
    violations: list[InvariantViolation] = []
    schema_errors = validate_journal(cell.records)
    for error in schema_errors[:5]:
        violations.append(
            InvariantViolation(cell=cell.name, kind="schema", detail=error)
        )
    if len(schema_errors) > 5:
        violations.append(
            InvariantViolation(
                cell=cell.name,
                kind="schema",
                detail=f"... and {len(schema_errors) - 5} more",
            )
        )
    space = SearchSpace.for_subsystem(cell.subsystem)
    victim, victim_share = cell_victim(cell.records)
    for index, record in enumerate(cell.records):
        if record.get("t") != "anomaly":
            continue
        try:
            mfs = mfs_from_dict(record["mfs"])
        except (KeyError, TypeError, ValueError) as error:
            violations.append(
                InvariantViolation(
                    cell=cell.name,
                    kind="mfs-soundness",
                    detail=f"record {index}: MFS does not parse ({error})",
                )
            )
            continue
        for error in mfs_soundness_errors(mfs, space):
            violations.append(
                InvariantViolation(
                    cell=cell.name,
                    kind="mfs-soundness",
                    detail=f"record {index}: {error}",
                )
            )
        result = reproduce_mfs(
            mfs, cell.subsystem, attempts=attempts,
            victim=victim, victim_share=victim_share,
        )
        if not result.reproduced:
            violations.append(
                InvariantViolation(
                    cell=cell.name,
                    kind="reproduction",
                    detail=f"record {index}: {result.describe()}",
                )
            )
    return violations


def run_invariants(
    cells: list[CorpusCell],
    attempts: int = REPRODUCE_ATTEMPTS,
    progress=None,
) -> list[InvariantViolation]:
    """All hard invariants over the whole corpus."""
    violations: list[InvariantViolation] = []
    for cell in cells:
        found = check_cell(cell, attempts=attempts)
        violations.extend(found)
        if progress is not None:
            anomalies = sum(
                1 for r in cell.records if r.get("t") == "anomaly"
            )
            progress(
                f"invariants {cell.name}: {anomalies} anomalies, "
                f"{len(found)} violation(s)"
            )
    return violations
