"""``repro canary check``: re-run the matrix, gate against the corpus.

The check has three layers, all of which must pass:

1. the corpus itself loads and passes integrity checks
   (:func:`repro.canary.corpus.load_corpus`);
2. the **hard invariant pass** over the corpus
   (:mod:`repro.canary.invariants`);
3. the matrix re-runs fresh under the *manifest's* spec (not the
   current defaults — the corpus defines the campaign) and the two
   populations go through the **drift gate**
   (:mod:`repro.canary.drift`).

Exit semantics mirror ``repro journal diff``: 0 clean, 1 drift or
invariant violation (naming culprit metric, subsystem and seed), 2 the
corpus is unreadable.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Optional, Union

from repro.analysis.journaldiff import describe_unknown_kinds
from repro.canary.corpus import (
    CorpusError,
    code_fingerprint,
    load_corpus,
)
from repro.canary.drift import (
    CellMetrics,
    DriftGates,
    DriftReport,
    cell_metrics,
    diff_populations,
    render_drift,
)
from repro.canary.invariants import InvariantViolation, run_invariants
from repro.canary.matrix import MatrixSpec, run_matrix
from repro.core.reproducer import REPRODUCE_ATTEMPTS
from repro.obs.journal import read_journal_prefix

#: Exit codes, mirroring ``repro journal diff``.
CHECK_OK = 0
CHECK_DRIFT = 1
CHECK_UNREADABLE = 2


@dataclasses.dataclass
class CanaryResult:
    """Everything one canary check decided."""

    exit_code: int
    drift: Optional[DriftReport]
    violations: list[InvariantViolation]
    corpus_fingerprint: Optional[str]
    current_fingerprint: str
    cells_checked: int
    error: Optional[str] = None
    #: "unknown record kind skipped" notes from corpus cells written by
    #: a newer schema — surfaced, never silently dropped (informational:
    #: the drift gates compare only the kinds both builds understand).
    skipped_kinds: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exit_code == CHECK_OK


def fresh_cell_metrics(
    spec: MatrixSpec,
    out_dir: Union[str, os.PathLike],
    progress: Optional[Callable[[str], None]] = None,
) -> list[CellMetrics]:
    """Run the matrix fresh and fold every cell into its metrics."""
    results = run_matrix(spec, out_dir, progress=progress)
    fresh: list[CellMetrics] = []
    for name, info in results.items():
        records, tail_error = read_journal_prefix(info["path"])
        if tail_error is not None:  # pragma: no cover - defensive
            raise CorpusError(
                f"fresh cell {name} is truncated: {tail_error}"
            )
        fresh.append(
            cell_metrics(info["subsystem"], info["seed"], records)
        )
    return fresh


def canary_check(
    corpus_dir: Union[str, os.PathLike],
    fresh_dir: Union[str, os.PathLike],
    gates: DriftGates = DriftGates(),
    attempts: int = REPRODUCE_ATTEMPTS,
    skip_invariants: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CanaryResult:
    """The whole check; never raises for corpus problems (exit code 2).

    ``fresh_dir`` receives the re-run matrix's journals and is left in
    place afterwards — CI uploads it as the failure artifact.
    """
    current = code_fingerprint()
    try:
        manifest, cells = load_corpus(corpus_dir)
    except CorpusError as error:
        return CanaryResult(
            exit_code=CHECK_UNREADABLE,
            drift=None,
            violations=[],
            corpus_fingerprint=None,
            current_fingerprint=current,
            cells_checked=0,
            error=str(error),
        )
    try:
        spec = MatrixSpec.from_dict(manifest["spec"])
    except (KeyError, TypeError, ValueError) as error:
        return CanaryResult(
            exit_code=CHECK_UNREADABLE,
            drift=None,
            violations=[],
            corpus_fingerprint=manifest.get("code_fingerprint"),
            current_fingerprint=current,
            cells_checked=0,
            error=f"corpus spec does not parse: {error}",
        )

    skipped_kinds = [
        f"corpus cell {cell.subsystem}-s{cell.seed}: {note}"
        for cell in cells
        for note in describe_unknown_kinds(cell.records)
    ]

    violations: list[InvariantViolation] = []
    if not skip_invariants:
        violations = run_invariants(
            cells, attempts=attempts, progress=progress
        )

    baseline = [
        cell_metrics(cell.subsystem, cell.seed, cell.records)
        for cell in cells
    ]
    fresh = fresh_cell_metrics(spec, fresh_dir, progress=progress)
    drift = diff_populations(baseline, fresh, gates=gates)

    exit_code = CHECK_OK
    if violations or not drift.ok:
        exit_code = CHECK_DRIFT
    return CanaryResult(
        exit_code=exit_code,
        drift=drift,
        violations=violations,
        corpus_fingerprint=manifest.get("code_fingerprint"),
        current_fingerprint=current,
        cells_checked=len(cells),
        skipped_kinds=skipped_kinds,
    )


def render_check(result: CanaryResult) -> str:
    """Human-readable verdict of one canary check."""
    if result.error is not None:
        return f"canary: corpus unreadable — {result.error}"
    lines = [
        f"canary: {result.cells_checked} corpus cell(s); corpus code "
        f"{str(result.corpus_fingerprint)[:12]}, current code "
        f"{result.current_fingerprint[:12]}"
    ]
    lines.extend(result.skipped_kinds)
    if result.violations:
        lines.append(
            f"hard invariants: {len(result.violations)} violation(s)"
        )
        for violation in result.violations:
            lines.append("  " + violation.describe())
    else:
        lines.append("hard invariants: all pass")
    if result.drift is not None:
        lines.append(render_drift(result.drift))
    lines.append(
        "canary verdict: "
        + ("OK" if result.ok else "FAILING (exit 1)")
    )
    return "\n".join(lines)
