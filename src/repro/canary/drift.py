"""Statistical drift detection across the canary's seed population.

``repro journal diff`` compares exactly two runs with single-run
tolerances; the canary generalizes it to *populations*: for each
subsystem, the corpus contributes one value per seed and the fresh
matrix contributes another, and each metric is gated on **robust
population statistics** rather than pointwise deltas:

* **median shift** — the fresh population's median moved more than a
  relative tolerance from the corpus median (both directions gate:
  drift is behavioural *change*, improvement included — an "improved"
  canary usually means the search is now exploring a different space,
  which invalidates baselines just as a regression would);
* **spread inflation** — the fresh population's inter-seed spread
  (IQR) inflated well past the corpus's (per-seed determinism means a
  healthy population's spread comes only from the seeds themselves);
* **missing-value count** — seeds that never found an anomaly (TTFA
  absent) are compared by count, not dropped;
* **MFS shape multiset** — the population-wide multiset of extracted
  MFS shapes (symptom × condition arity × mix requirement) must keep
  the same support and approximate counts.

Every finding names the culprit metric, its subsystem, and the seed
whose fresh value deviates most from the corpus population — the
first thing a developer bisecting a behavioural regression needs.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.analysis.journaldiff import journal_metrics

#: Metric name → higher-level family, for rendering.
#: ``latency_p99_us_median`` gates like TTFA: a corpus recorded before
#: the latency signal existed reports ``None`` on every seed, which the
#: missing-value count surfaces as drift exactly once — when the new
#: default lands — and the corpus refresh that accompanies it clears.
NUMERIC_METRICS = (
    "anomalies",
    "time_to_first_anomaly_seconds",
    "coverage_fraction",
    "mfs_mean_conditions",
    "latency_p99_us_median",
)


@dataclasses.dataclass(frozen=True)
class DriftGates:
    """Thresholds of the population gates.

    Defaults are deliberately tight: the matrix is deterministic per
    seed, so an unchanged search core reproduces the corpus exactly and
    every statistic lands on zero.  The tolerances only exist to admit
    refactors that re-interleave RNG draws without changing what the
    search *finds*.
    """

    #: Relative median shift (of max(|corpus|, |fresh|)) that gates.
    median_tolerance: float = 0.10
    #: Fresh IQR may exceed corpus IQR by this factor plus the slack.
    spread_factor: float = 2.0
    #: Absolute spread slack, as a fraction of the median scale.
    spread_slack: float = 0.10
    #: Total-variation distance over MFS shape multisets that gates.
    shape_tolerance: float = 0.25


@dataclasses.dataclass(frozen=True)
class CellMetrics:
    """One cell's journal distilled into the population-comparable view."""

    subsystem: str
    seed: int
    anomalies: int
    time_to_first_anomaly_seconds: Optional[float]
    coverage_fraction: Optional[float]
    experiments: int
    mfs_shapes: tuple[str, ...]
    mfs_condition_sizes: tuple[int, ...]
    #: Median modeled p99 over the cell's latency records (None for
    #: journals written before the latency signal existed).
    latency_p99_us_median: Optional[float] = None

    @property
    def mfs_mean_conditions(self) -> Optional[float]:
        if not self.mfs_condition_sizes:
            return None
        return float(np.mean(self.mfs_condition_sizes))


def cell_metrics(subsystem: str, seed: int, records: list) -> CellMetrics:
    """Fold one journal into its :class:`CellMetrics`."""
    metrics = journal_metrics(records)
    shapes: list[str] = []
    for shape, count in metrics["mfs_shape_counts"].items():
        shapes.extend([shape] * count)
    return CellMetrics(
        subsystem=subsystem,
        seed=seed,
        anomalies=int(metrics["anomalies"]),
        time_to_first_anomaly_seconds=metrics[
            "time_to_first_anomaly_seconds"
        ],
        coverage_fraction=metrics["coverage_fraction"],
        experiments=int(metrics["experiments"]),
        mfs_shapes=tuple(sorted(shapes)),
        mfs_condition_sizes=tuple(metrics["mfs_condition_sizes"]),
        latency_p99_us_median=metrics["latency_p99_us_median"],
    )


@dataclasses.dataclass(frozen=True)
class DriftFinding:
    """One gated population statistic that moved: the named culprit."""

    metric: str
    subsystem: str
    seed: Optional[int]  #: most-deviant fresh seed (None when n/a).
    detail: str

    def describe(self) -> str:
        where = f"subsystem {self.subsystem}"
        if self.seed is not None:
            where += f", seed {self.seed}"
        return f"DRIFT in {self.metric} ({where}): {self.detail}"


@dataclasses.dataclass
class DriftReport:
    """Outcome of one corpus-vs-fresh population comparison."""

    findings: list[DriftFinding]
    subsystems: list[str]
    cells_compared: int
    gates: DriftGates

    @property
    def ok(self) -> bool:
        return not self.findings


def _iqr(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return float(np.percentile(values, 75) - np.percentile(values, 25))


def _culprit_seed(
    fresh: list[CellMetrics], values: dict[int, float], center: float
) -> Optional[int]:
    """The fresh seed deviating most from the corpus center."""
    if not values:
        return None
    scale = max(abs(center), 1e-12)
    return max(
        values, key=lambda seed: abs(values[seed] - center) / scale
    )


def _gate_numeric(
    metric: str,
    subsystem: str,
    baseline: list[CellMetrics],
    fresh: list[CellMetrics],
    gates: DriftGates,
) -> list[DriftFinding]:
    base_values = {
        c.seed: getattr(c, metric) for c in baseline
        if getattr(c, metric) is not None
    }
    fresh_values = {
        c.seed: getattr(c, metric) for c in fresh
        if getattr(c, metric) is not None
    }
    findings: list[DriftFinding] = []
    # Seeds with a missing value (e.g. TTFA of a run that never found
    # an anomaly) gate by count: losing the metric on a seed *is* the
    # behavioural change, not noise to be dropped.
    if len(base_values) != len(fresh_values):
        changed = set(base_values) ^ set(fresh_values)
        findings.append(
            DriftFinding(
                metric=metric,
                subsystem=subsystem,
                seed=min(changed) if changed else None,
                detail=(
                    f"{len(base_values)}/{len(baseline)} corpus seeds "
                    f"report it, {len(fresh_values)}/{len(fresh)} fresh "
                    f"seeds do"
                ),
            )
        )
        return findings
    if not base_values:
        return findings  # absent on both sides: nothing to compare
    base = np.array(sorted(base_values.values()), dtype=float)
    new = np.array(sorted(fresh_values.values()), dtype=float)
    base_median = float(np.median(base))
    fresh_median = float(np.median(new))
    scale = max(abs(base_median), abs(fresh_median), 1e-12)
    shift = (fresh_median - base_median) / scale
    if abs(shift) > gates.median_tolerance:
        findings.append(
            DriftFinding(
                metric=metric,
                subsystem=subsystem,
                seed=_culprit_seed(fresh, fresh_values, base_median),
                detail=(
                    f"median {base_median:.6g} -> {fresh_median:.6g} "
                    f"({shift:+.1%}, tolerance "
                    f"{gates.median_tolerance:.0%})"
                ),
            )
        )
    base_iqr = _iqr(base)
    fresh_iqr = _iqr(new)
    allowed = base_iqr * gates.spread_factor + gates.spread_slack * scale
    if fresh_iqr > allowed:
        findings.append(
            DriftFinding(
                metric=metric,
                subsystem=subsystem,
                seed=_culprit_seed(fresh, fresh_values, base_median),
                detail=(
                    f"seed spread inflated: IQR {base_iqr:.6g} -> "
                    f"{fresh_iqr:.6g} (allowed {allowed:.6g})"
                ),
            )
        )
    return findings


def _shape_counts(cells: list[CellMetrics]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for cell in cells:
        for shape in cell.mfs_shapes:
            counts[shape] = counts.get(shape, 0) + 1
    return counts


def _gate_shapes(
    subsystem: str,
    baseline: list[CellMetrics],
    fresh: list[CellMetrics],
    gates: DriftGates,
) -> list[DriftFinding]:
    base = _shape_counts(baseline)
    new = _shape_counts(fresh)
    if base == new:
        return []

    def most_changed_seed() -> Optional[int]:
        by_seed_base = {c.seed: c.mfs_shapes for c in baseline}
        deltas = {
            c.seed: len(
                set(c.mfs_shapes) ^ set(by_seed_base.get(c.seed, ()))
            )
            for c in fresh
        }
        if not deltas:
            return None
        return max(deltas, key=lambda seed: deltas[seed])

    vanished = sorted(set(base) - set(new))
    appeared = sorted(set(new) - set(base))
    if vanished or appeared:
        parts = []
        if vanished:
            parts.append(f"shapes vanished: {', '.join(vanished)}")
        if appeared:
            parts.append(f"new shapes: {', '.join(appeared)}")
        return [
            DriftFinding(
                metric="mfs_shapes",
                subsystem=subsystem,
                seed=most_changed_seed(),
                detail="; ".join(parts),
            )
        ]
    total = max(sum(base.values()), sum(new.values()), 1)
    distance = sum(
        abs(base.get(shape, 0) - new.get(shape, 0))
        for shape in set(base) | set(new)
    ) / total
    if distance > gates.shape_tolerance:
        return [
            DriftFinding(
                metric="mfs_shapes",
                subsystem=subsystem,
                seed=most_changed_seed(),
                detail=(
                    f"shape multiset moved (total variation "
                    f"{distance:.0%} > {gates.shape_tolerance:.0%}): "
                    f"{base} -> {new}"
                ),
            )
        ]
    return []


def diff_populations(
    baseline: list[CellMetrics],
    fresh: list[CellMetrics],
    gates: DriftGates = DriftGates(),
) -> DriftReport:
    """Gate a fresh matrix population against the corpus population."""
    by_subsystem_base: dict[str, list[CellMetrics]] = {}
    for cell in baseline:
        by_subsystem_base.setdefault(cell.subsystem, []).append(cell)
    by_subsystem_fresh: dict[str, list[CellMetrics]] = {}
    for cell in fresh:
        by_subsystem_fresh.setdefault(cell.subsystem, []).append(cell)
    findings: list[DriftFinding] = []
    subsystems = sorted(set(by_subsystem_base) | set(by_subsystem_fresh))
    for subsystem in subsystems:
        base_cells = by_subsystem_base.get(subsystem, [])
        fresh_cells = by_subsystem_fresh.get(subsystem, [])
        if not base_cells or not fresh_cells:
            findings.append(
                DriftFinding(
                    metric="population",
                    subsystem=subsystem,
                    seed=None,
                    detail=(
                        f"{len(base_cells)} corpus cell(s) vs "
                        f"{len(fresh_cells)} fresh cell(s)"
                    ),
                )
            )
            continue
        for metric in NUMERIC_METRICS:
            findings.extend(
                _gate_numeric(metric, subsystem, base_cells, fresh_cells,
                              gates)
            )
        findings.extend(
            _gate_shapes(subsystem, base_cells, fresh_cells, gates)
        )
    return DriftReport(
        findings=findings,
        subsystems=subsystems,
        cells_compared=len(fresh),
        gates=gates,
    )


def render_drift(report: DriftReport) -> str:
    """Human-readable drift verdict, culprit-first."""
    lines = [
        f"population drift gate: {report.cells_compared} cell(s) across "
        f"subsystems {', '.join(report.subsystems)}"
    ]
    if report.ok:
        lines.append(
            f"verdict: no drift (median tolerance "
            f"{report.gates.median_tolerance:.0%}, spread factor "
            f"{report.gates.spread_factor:g}x)"
        )
    else:
        for finding in report.findings:
            lines.append("  " + finding.describe())
        first = report.findings[0]
        culprit = f"{first.metric} on subsystem {first.subsystem}"
        if first.seed is not None:
            culprit += f" (seed {first.seed})"
        lines.append(
            f"verdict: DRIFT — {len(report.findings)} finding(s); "
            f"first culprit: {culprit}"
        )
    return "\n".join(lines)
