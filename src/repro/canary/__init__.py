"""Continuous canary: a committed baseline corpus plus a drift gate.

The observatory (``repro.obs``, ``repro.analysis.journaldiff``) can
explain one run and compare two; the canary turns that into a
*continuous* regression net for the search core:

* :mod:`repro.canary.matrix` — the campaign matrix (subsystems ×
  seeds at a quick budget), each cell a deterministic journaled run;
* :mod:`repro.canary.corpus` — ``repro canary record``: run the
  matrix and commit it as a compressed, integrity-hashed baseline
  corpus under ``canary/corpus/``;
* :mod:`repro.canary.drift` — population-level statistical drift
  gates (median shift, spread inflation, MFS shape multisets) across
  the seed population, generalizing the 2-run ``journal diff``;
* :mod:`repro.canary.invariants` — the hard pass: corpus journals
  validate under the current schema, every MFS is sound and still
  reproduces its anomaly on a fresh testbed;
* :mod:`repro.canary.check` — ``repro canary check``: all of the
  above, with ``journal diff``-style exit codes (0 clean / 1 drift,
  naming culprit metric, subsystem and seed / 2 corpus unreadable).

See ``docs/CANARY.md`` for the workflow (recording, refreshing after
an intentional behaviour change, diagnosing a red canary).
"""

from repro.canary.check import (
    CHECK_DRIFT,
    CHECK_OK,
    CHECK_UNREADABLE,
    CanaryResult,
    canary_check,
    fresh_cell_metrics,
    render_check,
)
from repro.canary.corpus import (
    CORPUS_FORMAT,
    CorpusCell,
    CorpusError,
    code_fingerprint,
    load_corpus,
    load_manifest,
    record_corpus,
)
from repro.canary.drift import (
    CellMetrics,
    DriftFinding,
    DriftGates,
    DriftReport,
    cell_metrics,
    diff_populations,
    render_drift,
)
from repro.canary.invariants import (
    InvariantViolation,
    check_cell,
    mfs_soundness_errors,
    run_invariants,
)
from repro.canary.matrix import (
    DEFAULT_BUDGET_HOURS,
    DEFAULT_SEEDS,
    MatrixSpec,
    cell_name,
    run_cell,
    run_matrix,
)

__all__ = [
    "CHECK_DRIFT",
    "CHECK_OK",
    "CHECK_UNREADABLE",
    "CORPUS_FORMAT",
    "CanaryResult",
    "CellMetrics",
    "CorpusCell",
    "CorpusError",
    "DEFAULT_BUDGET_HOURS",
    "DEFAULT_SEEDS",
    "DriftFinding",
    "DriftGates",
    "DriftReport",
    "InvariantViolation",
    "MatrixSpec",
    "canary_check",
    "cell_metrics",
    "cell_name",
    "check_cell",
    "code_fingerprint",
    "diff_populations",
    "fresh_cell_metrics",
    "load_corpus",
    "load_manifest",
    "mfs_soundness_errors",
    "record_corpus",
    "render_check",
    "render_drift",
    "run_cell",
    "run_invariants",
    "run_matrix",
]
