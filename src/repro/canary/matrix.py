"""The canary campaign matrix: subsystems × seeds at a quick budget.

One *cell* is a full Collie search (ranking, SA passes, MFS
extraction) on one Table 1 subsystem with one seed, recorded through
the flight recorder into a JSONL journal.  Every search runs on the
simulated clock with a seeded RNG, so a cell is a deterministic
function of the code: re-running the matrix on unchanged code yields
bit-identical journals, and any divergence is a *behavioural* change
in the search core — precisely the signal the drift gate thresholds.

The default matrix covers all eight subsystems with a small seed
population; the population (not any single run) is what the drift
statistics compare, so gates stay meaningful even for refactors that
legitimately re-interleave RNG draws.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Optional, Union

#: Default quick budget: long enough that every subsystem finds at
#: least one anomaly and extracts its MFS, short enough that the whole
#: matrix records in seconds of wall-clock.
DEFAULT_BUDGET_HOURS = 1.0

#: Default seed population per subsystem.
DEFAULT_SEEDS = (1, 2, 3)


@dataclasses.dataclass(frozen=True)
class MatrixSpec:
    """What the canary matrix runs: the campaign's identity."""

    subsystems: tuple[str, ...] = tuple("ABCDEFGH")
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    budget_hours: float = DEFAULT_BUDGET_HOURS
    counter_mode: str = "diag"

    def __post_init__(self) -> None:
        if not self.subsystems:
            raise ValueError("matrix needs at least one subsystem")
        if not self.seeds:
            raise ValueError("matrix needs at least one seed")
        if self.budget_hours <= 0:
            raise ValueError("budget must be positive")
        if self.counter_mode not in ("diag", "perf"):
            raise ValueError("counter_mode must be 'diag' or 'perf'")

    def cells(self) -> list[tuple[str, int]]:
        """Every (subsystem, seed) cell, in deterministic order."""
        return [
            (subsystem, seed)
            for subsystem in self.subsystems
            for seed in self.seeds
        ]

    def to_dict(self) -> dict:
        return {
            "subsystems": list(self.subsystems),
            "seeds": list(self.seeds),
            "budget_hours": self.budget_hours,
            "counter_mode": self.counter_mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MatrixSpec":
        return cls(
            subsystems=tuple(data["subsystems"]),
            seeds=tuple(int(s) for s in data["seeds"]),
            budget_hours=float(data["budget_hours"]),
            counter_mode=data.get("counter_mode", "diag"),
        )


def cell_name(subsystem: str, seed: int) -> str:
    """Canonical cell label, doubling as the corpus file stem."""
    return f"{subsystem}-s{seed}"


def run_cell(
    subsystem: str,
    seed: int,
    budget_hours: float,
    counter_mode: str,
    journal_path: Union[str, os.PathLike],
):
    """Run one matrix cell, journaling it; returns the SearchReport."""
    from repro.core import Collie
    from repro.obs import FlightRecorder, RunJournal

    recorder = FlightRecorder(journal=RunJournal(journal_path))
    try:
        collie = Collie.for_subsystem(
            subsystem,
            counter_mode=counter_mode,
            budget_hours=budget_hours,
            seed=seed,
            recorder=recorder,
        )
        return collie.run()
    finally:
        recorder.close()


def run_matrix(
    spec: MatrixSpec,
    out_dir: Union[str, os.PathLike],
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run every cell of the matrix into ``out_dir``.

    Returns cell name → ``{"path", "subsystem", "seed", "anomalies",
    "experiments"}``, in matrix order.
    """
    os.makedirs(out_dir, exist_ok=True)
    results: dict[str, dict] = {}
    for subsystem, seed in spec.cells():
        name = cell_name(subsystem, seed)
        path = os.path.join(os.fspath(out_dir), f"{name}.jsonl")
        report = run_cell(
            subsystem, seed, spec.budget_hours, spec.counter_mode, path
        )
        results[name] = {
            "path": path,
            "subsystem": subsystem,
            "seed": seed,
            "anomalies": len(report.anomalies),
            "experiments": report.experiments,
        }
        if progress is not None:
            progress(
                f"cell {name}: {len(report.anomalies)} anomalies, "
                f"{report.experiments} experiments"
            )
    return results
