"""The committed baseline corpus: compressed journals + manifest.

Layout of a corpus directory (``canary/corpus/`` in the repository)::

    manifest.json        # spec, format/schema versions, fingerprints
    A-s1.jsonl.gz        # one gzipped journal per matrix cell
    A-s2.jsonl.gz
    ...

The manifest records everything needed to re-run the matrix (the
:class:`~repro.canary.matrix.MatrixSpec`), the journal schema version
it was recorded under, a content fingerprint of the ``repro`` package
at recording time (informational: names the code that produced the
baseline), and per-cell integrity hashes of the *uncompressed* journal
bytes.

Cells are stored in *canonical* form: real-wall-clock content (the
``*_wall`` and ``executor.*`` timing histograms inside
``run_end``/``snapshot`` metrics dumps, the elapsed-time fields on
``fanout``/``retry`` records, ``heartbeat`` liveness records — the
only nondeterministic content a deterministic search emits) is zeroed
or dropped, invocation counts kept.  Together with deterministic
gzip members (zeroed mtime, no filename), re-recording an unchanged
matrix produces byte-identical corpus files — the corpus diffs cleanly
in version control.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
import tempfile
from typing import Optional, Union

from repro.canary.matrix import MatrixSpec, run_matrix
from repro.obs.journal import read_journal_prefix
from repro.obs.schema import SCHEMA_VERSION

#: Version of the corpus-on-disk layout itself.
CORPUS_FORMAT = 1

MANIFEST_NAME = "manifest.json"


class CorpusError(Exception):
    """A corpus directory is missing, incomplete or corrupt."""


def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file, import-order free.

    Purely informational provenance: ``canary check`` prints it next to
    the recorded one so a drift report names *which* code the baseline
    belongs to, but equality is never required — unchanged behaviour on
    changed code is exactly what the canary certifies.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def _journal_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


#: Histogram stat fields zeroed by canonicalization (count is kept:
#: *how often* a timer fired is deterministic, how long is not).
_WALL_STATS = ("min", "max", "sum", "mean", "p50", "p90", "p99")

#: Top-level record fields that carry real elapsed time (the campaign
#: executor's ``fanout``/``retry`` envelopes), zeroed by canonicalization.
_WALL_FIELDS = ("wall_seconds", "busy_seconds", "backoff_seconds")


def _is_wall_histogram(name: str) -> bool:
    """Whether a metrics histogram measures real (not simulated) time.

    The ``*_wall`` span timers and every ``executor.*`` histogram time
    the host machine; everything else in the registry is driven by the
    simulated clock and identical run to run.
    """
    base = name.split("{", 1)[0]
    return "_wall" in base or base.startswith("executor.")


def _neutralize_wall_clock(record: dict) -> dict:
    """Zero the wall-clock content of one record."""
    if any(field in record for field in _WALL_FIELDS):
        record = dict(record)
        for field in _WALL_FIELDS:
            if field in record:
                record[field] = 0.0
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return record
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        return record
    new_histograms = {}
    for name, stats in histograms.items():
        if _is_wall_histogram(name) and isinstance(stats, dict):
            stats = {
                key: (0.0 if key in _WALL_STATS else value)
                for key, value in stats.items()
            }
        new_histograms[name] = stats
    record = dict(record)
    record["metrics"] = {**metrics, "histograms": new_histograms}
    return record


def canonical_journal_bytes(records: list) -> bytes:
    """Re-serialize a journal with nondeterministic content neutralized.

    The search itself is deterministic (simulated clock, seeded RNG);
    the only run-to-run variation in a journal is real wall-clock time
    leaking in: the ``*_wall`` span timers and ``executor.*`` timing
    histograms dumped inside ``run_end``/``snapshot`` records, the
    elapsed-time envelope fields on campaign ``fanout``/``retry``
    records, and v7 ``heartbeat`` liveness records (wall-clock by
    definition — dropped entirely).  Canonical form zeroes the former
    (keeping invocation counts) and omits the latter, so canonical
    bytes are a pure function of search behaviour: a campaign run with
    the telemetry plane attached canonicalizes identically to a bare
    run.
    """
    lines = [
        json.dumps(
            _neutralize_wall_clock(record), separators=(",", ":")
        )
        for record in records
        if record.get("t") != "heartbeat"
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def _write_gz(path: str, data: bytes) -> None:
    """Deterministic gzip: fixed mtime, no embedded filename."""
    with open(path, "wb") as raw:
        with gzip.GzipFile(
            filename="", mode="wb", fileobj=raw, mtime=0
        ) as handle:
            handle.write(data)


def record_corpus(
    spec: MatrixSpec,
    corpus_dir: Union[str, os.PathLike],
    progress=None,
    work_dir: Optional[str] = None,
) -> dict:
    """Run the matrix and commit it as the baseline corpus.

    Writes one ``<cell>.jsonl.gz`` per cell plus ``manifest.json``;
    returns the manifest dict.  An existing corpus at the same path is
    overwritten cell by cell (a refresh, see docs/CANARY.md).
    """
    corpus_dir = os.fspath(corpus_dir)
    os.makedirs(corpus_dir, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=work_dir) as staging:
        results = run_matrix(spec, staging, progress=progress)
        cells: dict[str, dict] = {}
        for name, info in results.items():
            records, tail_error = read_journal_prefix(info["path"])
            if tail_error is not None:  # pragma: no cover - defensive
                raise CorpusError(
                    f"freshly recorded cell {name} is truncated: {tail_error}"
                )
            data = canonical_journal_bytes(records)
            _write_gz(os.path.join(corpus_dir, f"{name}.jsonl.gz"), data)
            cells[name] = {
                "subsystem": info["subsystem"],
                "seed": info["seed"],
                "records": len(records),
                "anomalies": info["anomalies"],
                "experiments": info["experiments"],
                "sha256": _journal_sha256(data),
            }
    manifest = {
        "format": CORPUS_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "code_fingerprint": code_fingerprint(),
        "cells": cells,
    }
    with open(os.path.join(corpus_dir, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


@dataclasses.dataclass(frozen=True)
class CorpusCell:
    """One baseline cell, decompressed and parsed."""

    name: str
    subsystem: str
    seed: int
    records: list


def load_manifest(corpus_dir: Union[str, os.PathLike]) -> dict:
    """Read and sanity-check a corpus manifest (CorpusError on failure)."""
    path = os.path.join(os.fspath(corpus_dir), MANIFEST_NAME)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise CorpusError(
            f"no corpus manifest at {path} — record one with "
            f"'repro canary record'"
        )
    except (OSError, json.JSONDecodeError) as error:
        raise CorpusError(f"cannot read corpus manifest {path}: {error}")
    if not isinstance(manifest, dict):
        raise CorpusError(f"corpus manifest {path} is not a JSON object")
    if manifest.get("format") != CORPUS_FORMAT:
        raise CorpusError(
            f"unsupported corpus format {manifest.get('format')!r} "
            f"(expected {CORPUS_FORMAT})"
        )
    for field in ("spec", "cells"):
        if not isinstance(manifest.get(field), dict):
            raise CorpusError(f"corpus manifest {path} lacks {field!r}")
    return manifest


def load_corpus(
    corpus_dir: Union[str, os.PathLike]
) -> tuple[dict, list[CorpusCell]]:
    """Load a whole corpus: ``(manifest, cells)``.

    Raises :class:`CorpusError` on a missing/corrupt manifest, a missing
    cell file, or a cell whose bytes no longer match the manifest's
    integrity hash (a corrupted or hand-edited baseline must never gate
    silently).
    """
    corpus_dir = os.fspath(corpus_dir)
    manifest = load_manifest(corpus_dir)
    cells: list[CorpusCell] = []
    for name, meta in sorted(manifest["cells"].items()):
        path = os.path.join(corpus_dir, f"{name}.jsonl.gz")
        try:
            with gzip.open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise CorpusError(f"corpus cell {name} is missing ({path})")
        except (OSError, gzip.BadGzipFile) as error:
            raise CorpusError(f"corpus cell {name} is unreadable: {error}")
        digest = _journal_sha256(data)
        if digest != meta.get("sha256"):
            raise CorpusError(
                f"corpus cell {name} fails its integrity check "
                f"(sha256 {digest[:12]}… != manifest "
                f"{str(meta.get('sha256'))[:12]}…)"
            )
        records = [
            json.loads(line)
            for line in data.decode("utf-8").splitlines()
            if line.strip()
        ]
        if not records:
            raise CorpusError(f"corpus cell {name} is empty")
        cells.append(
            CorpusCell(
                name=name,
                subsystem=meta["subsystem"],
                seed=int(meta["seed"]),
                records=records,
            )
        )
    if not cells:
        raise CorpusError(f"corpus at {corpus_dir} has no cells")
    return manifest, cells
