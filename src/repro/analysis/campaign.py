"""Multi-seed search campaigns as a library feature.

The evaluation benchmarks run fleets of searches and aggregate them;
this module packages that workflow for downstream users: pick an
approach, a subsystem and a seed count, get back per-seed reports plus
the Figure 4-style aggregation, ready for
:func:`repro.analysis.figures.time_to_find_series`.

Campaigns are embarrassingly parallel across seeds: ``workers > 1``
fans the per-seed runs across a
:class:`~repro.core.executor.CampaignExecutor` process pool.  Every
search constructs its RNG from its own seed inside the worker, so the
reports are bit-identical to a serial campaign (the determinism suite
pins this).  An optional :class:`~repro.core.evalcache.EvalCache`
warm-starts every run and absorbs the evaluations they performed,
enabling cross-run reuse (``--cache`` on the CLI).

That purity is also what makes campaigns *interruptible*: each seed's
report is a pure function of its payload, and the flight recorder's
journal is an append-only valid prefix even after a crash.  Resuming
(``campaign --resume journal.jsonl``) replays the journal's completed
``run_start``…``run_end`` blocks into finished reports, re-runs only
the missing seeds, and produces final reports bit-identical to an
uninterrupted campaign (extending the ``reports_from_journal``
determinism guarantee); an attached
:class:`~repro.core.faults.RetryPolicy` additionally survives crashed
or hung workers mid-campaign.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Optional, Sequence, Union

from repro.analysis.figures import TimeToFindSeries, time_to_find_series
from repro.baselines import BayesOptSearch, RandomSearch
from repro.baselines.genetic import GeneticSearch
from repro.core import Collie
from repro.core.collie import SearchReport
from repro.core.evalcache import EvalCache
from repro.core.executor import CampaignExecutor, ExecutorStats
from repro.core.faults import FaultPlan, RetryPolicy


# -- approach factories (module-level: picklable for process fan-out) -------


def _run_random(sub, hours, seed, cache=None, batch=True):
    return RandomSearch(
        sub, budget_hours=hours, seed=seed, cache=cache, batch=batch
    ).run()


def _run_genetic(sub, hours, seed, cache=None):
    return GeneticSearch(
        sub, budget_hours=hours, seed=seed, cache=cache
    ).run()


def _run_bayesopt(sub, hours, seed, cache=None):
    return BayesOptSearch(
        sub, budget_hours=hours, seed=seed, use_mfs=False, cache=cache
    ).run()


def _run_bayesopt_mfs(sub, hours, seed, cache=None):
    return BayesOptSearch(
        sub, budget_hours=hours, seed=seed, use_mfs=True, cache=cache
    ).run()


def _run_sa_perf(sub, hours, seed, cache=None, batch=True, latency=True):
    return Collie.for_subsystem(
        sub, counter_mode="perf", use_mfs=False, budget_hours=hours,
        seed=seed, cache=cache, batch=batch, latency=latency,
    ).run()


def _run_sa_diag(sub, hours, seed, cache=None, batch=True, latency=True):
    return Collie.for_subsystem(
        sub, counter_mode="diag", use_mfs=False, budget_hours=hours,
        seed=seed, cache=cache, batch=batch, latency=latency,
    ).run()


def _run_collie_perf(sub, hours, seed, cache=None, batch=True, latency=True):
    return Collie.for_subsystem(
        sub, counter_mode="perf", use_mfs=True, budget_hours=hours,
        seed=seed, cache=cache, batch=batch, latency=latency,
    ).run()


def _run_collie(sub, hours, seed, cache=None, batch=True, latency=True):
    return Collie.for_subsystem(
        sub, counter_mode="diag", use_mfs=True, budget_hours=hours,
        seed=seed, cache=cache, batch=batch, latency=latency,
    ).run()


#: Approach name → factory(subsystem, budget_hours, seed[, cache]) -> report.
APPROACHES: dict = {
    "random": _run_random,
    "genetic": _run_genetic,
    "bayesopt": _run_bayesopt,
    "bayesopt+mfs": _run_bayesopt_mfs,
    "sa-perf": _run_sa_perf,
    "sa-diag": _run_sa_diag,
    "collie-perf": _run_collie_perf,
    "collie": _run_collie,
}


def _accepts_kwarg(factory: Callable, name: str) -> bool:
    """Whether a factory takes the named optional keyword argument."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    return name in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _run_seed(payload: dict) -> dict:
    """One campaign seed, executed inside a worker process."""
    factory = payload["factory"]
    if factory is None:
        factory = APPROACHES[payload["approach"]]
    cache = EvalCache() if payload["use_cache"] else None
    if cache is not None and payload["cache_entries"]:
        cache.import_entries(payload["cache_entries"])
    args = (payload["subsystem"], payload["budget_hours"], payload["seed"])
    kwargs: dict = {}
    if cache is not None and _accepts_kwarg(factory, "cache"):
        kwargs["cache"] = cache
    if not payload.get("batch", True) and _accepts_kwarg(factory, "batch"):
        kwargs["batch"] = False
    if not payload.get("latency", True) and _accepts_kwarg(
        factory, "latency"
    ):
        kwargs["latency"] = False
    report = factory(*args, **kwargs)
    return {
        "report": report,
        "cache_entries": (
            cache.export_entries(new_only=True) if cache else None
        ),
        "cache_stats": cache.stats_dict() if cache else None,
    }


def completed_runs_from_journal(
    records: "Sequence[dict]",
) -> dict[int, SearchReport]:
    """Seed → finished report, for every *complete* run in a journal.

    A run counts only when its ``run_start`` (carrying the seed) is
    matched by a ``run_end`` before the next run begins; a trailing
    partial run — the one a crash interrupted — is deliberately
    dropped, so resume re-runs that seed from scratch and the final
    report stays bit-identical to an uninterrupted campaign.

    Run grouping goes through :func:`~repro.obs.journal.run_records`,
    which demultiplexes chain-stamped population journals before
    splitting on ``run_start`` — so resuming from a ``--chains``
    campaign journal sees each chain's run intact instead of N
    interleaved fragments.  Unstamped journals group exactly as before.
    """
    from repro.obs.journal import reports_from_records, run_records

    runs = run_records(records)
    completed: dict[int, SearchReport] = {}
    for run in runs:
        seed = run[0].get("seed")
        if seed is None:
            continue
        if not any(record.get("t") == "run_end" for record in run):
            continue
        (report,) = reports_from_records(run)
        completed[int(seed)] = report
    return completed


@dataclasses.dataclass
class CampaignResult:
    """One approach's multi-seed campaign."""

    approach: str
    subsystem: str
    budget_hours: float
    reports: list
    #: Fan-out accounting of the run that produced the reports (None for
    #: pre-executor callers constructing results by hand).
    executor_stats: Optional[ExecutorStats] = None
    #: Seeds whose reports were replayed from a resume journal rather
    #: than recomputed (in seed order; empty for a fresh campaign).
    resumed_seeds: tuple = ()

    @property
    def seeds(self) -> int:
        return len(self.reports)

    def per_seed_hits(self) -> list[dict]:
        return [report.first_hit_times() for report in self.reports]

    def union_tags(self) -> set:
        tags: set = set()
        for hits in self.per_seed_hits():
            tags.update(hits)
        return tags

    def mean_found(self) -> float:
        counts = [len(hits) for hits in self.per_seed_hits()]
        return sum(counts) / len(counts) if counts else 0.0

    def series(self, max_anomalies: int = 13) -> TimeToFindSeries:
        return time_to_find_series(
            self.approach, self.per_seed_hits(), max_anomalies
        )


def run_campaign(
    approach: str,
    subsystem: str = "F",
    seeds: Sequence[int] = (1, 2, 3),
    budget_hours: float = 10.0,
    factory: Optional[Callable] = None,
    workers: int = 1,
    cache: Optional[EvalCache] = None,
    recorder=None,
    batch: bool = True,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    resume_from: Union[str, dict, None] = None,
    latency: bool = True,
) -> CampaignResult:
    """Run one approach across seeds.

    ``factory`` overrides the approach registry for custom
    configurations (e.g. restricted spaces); with ``workers > 1`` it
    must be a module-level (picklable) callable.  ``cache`` warm-starts
    every seed's evaluations and absorbs what they computed.

    ``recorder`` (a flight recorder) observes the fan-out live and
    journals every seed's report post-hoc — a journal's file handle
    cannot travel into worker processes, so campaigns replay the
    returned reports instead of journaling in-flight.

    ``retry`` turns on fault-tolerant execution (timeouts, bounded
    retries with deterministic backoff, host quarantine); ``faults``
    attaches a deterministic injection plan (chaos testing).

    ``resume_from`` restarts an interrupted campaign: a journal path
    (its valid prefix is read crash-tolerantly) or a pre-extracted
    ``{seed: report}`` mapping.  Completed seeds are replayed, missing
    ones recomputed, and the result — including a journal written by
    ``recorder`` — is bit-identical to an uninterrupted campaign.
    """
    if factory is None and approach not in APPROACHES:
        raise KeyError(
            f"unknown approach {approach!r}; choose from "
            f"{sorted(APPROACHES)} or pass a factory"
        )
    seeds = list(seeds)
    completed: dict[int, SearchReport] = {}
    if resume_from is not None:
        if isinstance(resume_from, dict):
            completed = dict(resume_from)
        else:
            from repro.obs.journal import read_journal_prefix

            records, _tail = read_journal_prefix(resume_from)
            completed = completed_runs_from_journal(records)
        completed = {
            seed: report for seed, report in completed.items()
            if seed in set(seeds)
        }
    todo = [seed for seed in seeds if seed not in completed]
    warm_entries = cache.export_entries() if cache is not None else None
    payloads = [
        {
            "approach": approach,
            "factory": factory,
            "subsystem": subsystem,
            "budget_hours": budget_hours,
            "seed": seed,
            "use_cache": cache is not None,
            "cache_entries": warm_entries,
            "batch": batch,
            "latency": latency,
        }
        for seed in todo
    ]
    executor = CampaignExecutor(
        workers=workers,
        metrics=recorder.metrics if recorder is not None else None,
        progress=recorder.task_progress if recorder is not None else None,
        retry=retry,
        faults=faults,
        recorder=recorder,
    )
    outcomes = executor.map(_run_seed, payloads) if payloads else []
    fresh = {
        seed: outcome["report"] for seed, outcome in zip(todo, outcomes)
    }
    reports = [
        completed[seed] if seed in completed else fresh[seed]
        for seed in seeds
    ]
    if recorder is not None:
        if executor.last_stats is not None:
            recorder.fanout(executor.last_stats)
        if completed:
            recorder.metrics.counter(
                "campaign.resumed_runs", len(completed)
            )
        # Replay every run in seed order — resumed and fresh alike — so
        # the new journal is complete and re-renders identically to one
        # from an uninterrupted campaign.
        for seed, report in zip(seeds, reports):
            recorder.record_report(report, budget_hours, seed=seed)
    if cache is not None:
        for outcome in outcomes:
            if outcome["cache_entries"]:
                cache.import_entries(outcome["cache_entries"])
            if outcome["cache_stats"]:
                cache.merge_stats(outcome["cache_stats"])
    return CampaignResult(
        approach=approach,
        subsystem=subsystem,
        budget_hours=budget_hours,
        reports=reports,
        executor_stats=executor.last_stats,
        resumed_seeds=tuple(seed for seed in seeds if seed in completed),
    )


def compare(
    approaches: Sequence[str],
    subsystem: str = "F",
    seeds: Sequence[int] = (1, 2, 3),
    budget_hours: float = 10.0,
    max_anomalies: int = 13,
    workers: int = 1,
    cache: Optional[EvalCache] = None,
) -> list[TimeToFindSeries]:
    """Figure 4 in one call: one series per requested approach."""
    return [
        run_campaign(
            approach, subsystem, seeds, budget_hours,
            workers=workers, cache=cache,
        ).series(max_anomalies)
        for approach in approaches
    ]
