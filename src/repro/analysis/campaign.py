"""Multi-seed search campaigns as a library feature.

The evaluation benchmarks run fleets of searches and aggregate them;
this module packages that workflow for downstream users: pick an
approach, a subsystem and a seed count, get back per-seed reports plus
the Figure 4-style aggregation, ready for
:func:`repro.analysis.figures.time_to_find_series`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.analysis.figures import TimeToFindSeries, time_to_find_series
from repro.baselines import BayesOptSearch, RandomSearch
from repro.baselines.genetic import GeneticSearch
from repro.core import Collie

#: Approach name → factory(subsystem, budget_hours, seed) -> report.
APPROACHES: dict = {
    "random": lambda sub, hours, seed: RandomSearch(
        sub, budget_hours=hours, seed=seed
    ).run(),
    "genetic": lambda sub, hours, seed: GeneticSearch(
        sub, budget_hours=hours, seed=seed
    ).run(),
    "bayesopt": lambda sub, hours, seed: BayesOptSearch(
        sub, budget_hours=hours, seed=seed, use_mfs=False
    ).run(),
    "bayesopt+mfs": lambda sub, hours, seed: BayesOptSearch(
        sub, budget_hours=hours, seed=seed, use_mfs=True
    ).run(),
    "sa-perf": lambda sub, hours, seed: Collie.for_subsystem(
        sub, counter_mode="perf", use_mfs=False, budget_hours=hours,
        seed=seed,
    ).run(),
    "sa-diag": lambda sub, hours, seed: Collie.for_subsystem(
        sub, counter_mode="diag", use_mfs=False, budget_hours=hours,
        seed=seed,
    ).run(),
    "collie-perf": lambda sub, hours, seed: Collie.for_subsystem(
        sub, counter_mode="perf", use_mfs=True, budget_hours=hours,
        seed=seed,
    ).run(),
    "collie": lambda sub, hours, seed: Collie.for_subsystem(
        sub, counter_mode="diag", use_mfs=True, budget_hours=hours,
        seed=seed,
    ).run(),
}


@dataclasses.dataclass
class CampaignResult:
    """One approach's multi-seed campaign."""

    approach: str
    subsystem: str
    budget_hours: float
    reports: list

    @property
    def seeds(self) -> int:
        return len(self.reports)

    def per_seed_hits(self) -> list[dict]:
        return [report.first_hit_times() for report in self.reports]

    def union_tags(self) -> set:
        tags: set = set()
        for hits in self.per_seed_hits():
            tags.update(hits)
        return tags

    def mean_found(self) -> float:
        counts = [len(hits) for hits in self.per_seed_hits()]
        return sum(counts) / len(counts) if counts else 0.0

    def series(self, max_anomalies: int = 13) -> TimeToFindSeries:
        return time_to_find_series(
            self.approach, self.per_seed_hits(), max_anomalies
        )


def run_campaign(
    approach: str,
    subsystem: str = "F",
    seeds: Sequence[int] = (1, 2, 3),
    budget_hours: float = 10.0,
    factory: Optional[Callable] = None,
) -> CampaignResult:
    """Run one approach across seeds.

    ``factory`` overrides the approach registry for custom
    configurations (e.g. restricted spaces).
    """
    if factory is None:
        if approach not in APPROACHES:
            raise KeyError(
                f"unknown approach {approach!r}; choose from "
                f"{sorted(APPROACHES)} or pass a factory"
            )
        factory = APPROACHES[approach]
    reports = [factory(subsystem, budget_hours, seed) for seed in seeds]
    return CampaignResult(
        approach=approach,
        subsystem=subsystem,
        budget_hours=budget_hours,
        reports=reports,
    )


def compare(
    approaches: Sequence[str],
    subsystem: str = "F",
    seeds: Sequence[int] = (1, 2, 3),
    budget_hours: float = 10.0,
    max_anomalies: int = 13,
) -> list[TimeToFindSeries]:
    """Figure 4 in one call: one series per requested approach."""
    return [
        run_campaign(
            approach, subsystem, seeds, budget_hours
        ).series(max_anomalies)
        for approach in approaches
    ]
