"""Campaign diffing: did the fix campaign actually help?

Operators re-run Collie after firmware upgrades or configuration
changes (the paper's vendors fixed 7 of the 18 anomalies this way) and
need to compare: which anomaly regions disappeared, which persist, and
what appeared fresh.  Region identity across runs cannot use ground
truth (real operators have none), so MFSes are matched by mutual
witness coverage: two regions are "the same anomaly" when each run's
region covers the other run's witness.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.mfs import MinimalFeatureSet


@dataclasses.dataclass(frozen=True)
class RegionMatch:
    """A before-region paired with its after-run counterpart."""

    before: MinimalFeatureSet
    after: MinimalFeatureSet


@dataclasses.dataclass
class CampaignDiff:
    """Outcome of comparing two anomaly sets."""

    persisting: list
    resolved: list  #: regions found before, absent after.
    appeared: list  #: regions only the after-run found.

    @property
    def is_clean_fix(self) -> bool:
        """The change resolved something and broke nothing new."""
        return bool(self.resolved) and not self.appeared

    def summary(self) -> str:
        lines = [
            f"{len(self.resolved)} resolved, "
            f"{len(self.persisting)} persisting, "
            f"{len(self.appeared)} newly appeared",
        ]
        for mfs in self.resolved:
            lines.append(f"  resolved:   {mfs.describe()}")
        for match in self.persisting:
            lines.append(f"  persisting: {match.after.describe()}")
        for mfs in self.appeared:
            lines.append(f"  appeared:   {mfs.describe()}")
        return "\n".join(lines)


def _same_region(a: MinimalFeatureSet, b: MinimalFeatureSet) -> bool:
    """Region identity by mutual witness coverage and symptom class."""
    if a.symptom != b.symptom:
        return False
    return a.matches(b.witness) or b.matches(a.witness)


def diff_anomaly_sets(
    before: Sequence[MinimalFeatureSet],
    after: Sequence[MinimalFeatureSet],
) -> CampaignDiff:
    """Match two runs' anomaly sets into persisting/resolved/appeared."""
    unmatched_after = list(after)
    persisting = []
    resolved = []
    for old in before:
        match = next(
            (new for new in unmatched_after if _same_region(old, new)),
            None,
        )
        if match is None:
            resolved.append(old)
        else:
            unmatched_after.remove(match)
            persisting.append(RegionMatch(before=old, after=match))
    return CampaignDiff(
        persisting=persisting,
        resolved=resolved,
        appeared=unmatched_after,
    )
