"""Reporting and figure-series assembly for the evaluation harness.

* :mod:`repro.analysis.tables` renders Table 1 (testbed inventory) and
  Table 2 (anomalies with trigger conditions) in the paper's shape;
* :mod:`repro.analysis.figures` builds the data series behind Figures
  4–6 (time-to-find curves, ablations, counter traces);
* :mod:`repro.analysis.render` pretty-prints series and tables as text.
"""

from repro.analysis.figures import (
    CounterTrace,
    TimeToFindSeries,
    counter_trace,
    time_to_find_series,
)
from repro.analysis.sensitivity import SensitivityAnalyzer, SensitivityProfile
from repro.analysis.serialize import load_anomalies, save_report
from repro.analysis.tables import table1_rows, table2_rows
from repro.analysis.render import render_table

__all__ = [
    "CounterTrace",
    "TimeToFindSeries",
    "counter_trace",
    "time_to_find_series",
    "SensitivityAnalyzer",
    "SensitivityProfile",
    "load_anomalies",
    "save_report",
    "table1_rows",
    "table2_rows",
    "render_table",
]
