"""Data series behind Figures 4–6.

Figure 4: mean time to find the k-th anomaly, per approach, with error
bars over seeds.  Figure 5 is the same shape for the ablation variants.
Figure 6: one diagnostic counter's (normalised) trajectory during a
search, with marks at each anomaly discovery.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class TimeToFindSeries:
    """Time to the k-th distinct anomaly for one approach (Fig. 4/5 bars)."""

    approach: str
    #: mean_hours[k-1] is the mean simulated time to the k-th anomaly,
    #: computed over the seeds that found at least k.
    mean_hours: tuple[float, ...]
    std_hours: tuple[float, ...]
    #: how many seeds found at least k anomalies (bars shorter than the
    #: full anomaly count reflect approaches that plateau, like random).
    support: tuple[int, ...]
    seeds: int

    @property
    def anomalies_found(self) -> int:
        """Anomaly count found by a majority of seeds."""
        return sum(1 for s in self.support if s * 2 > self.seeds)


def _first_hit_sequences(per_seed_hits: Sequence[dict]) -> list[list[float]]:
    """Sorted discovery times (hours) per seed."""
    return [
        sorted(seconds / 3600.0 for seconds in hits.values())
        for hits in per_seed_hits
    ]


def time_to_find_series(
    approach: str,
    per_seed_hits: Sequence[dict],
    max_anomalies: int,
) -> TimeToFindSeries:
    """Aggregate per-seed tag→time maps into a Figure 4 series."""
    sequences = _first_hit_sequences(per_seed_hits)
    means, stds, support = [], [], []
    for k in range(1, max_anomalies + 1):
        times = [seq[k - 1] for seq in sequences if len(seq) >= k]
        support.append(len(times))
        if times:
            means.append(float(np.mean(times)))
            stds.append(float(np.std(times)))
        else:
            means.append(float("nan"))
            stds.append(float("nan"))
    return TimeToFindSeries(
        approach=approach,
        mean_hours=tuple(means),
        std_hours=tuple(stds),
        support=tuple(support),
        seeds=len(sequences),
    )


@dataclasses.dataclass(frozen=True)
class CounterTrace:
    """Figure 6: one counter's normalised per-experiment trajectory."""

    approach: str
    counter: str
    hours: tuple[float, ...]
    normalised_values: tuple[float, ...]
    #: hours at which a new anomaly was found (the red marks of Fig. 6).
    anomaly_marks: tuple[float, ...]

    def bucketed(self, buckets: int = 40) -> list[tuple[float, float]]:
        """(hour, max normalised value) per time bucket, for ascii plots."""
        if not self.hours:
            return []
        edges = np.linspace(0.0, max(self.hours), buckets + 1)
        out = []
        values = np.array(self.normalised_values)
        hours = np.array(self.hours)
        for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
            if i == buckets - 1:
                mask = (hours >= lo) & (hours <= hi)  # include the end
            else:
                mask = (hours >= lo) & (hours < hi)
            out.append((float((lo + hi) / 2), float(values[mask].max())
                        if mask.any() else 0.0))
        return out


def counter_trace(
    approach: str,
    events: Sequence,
    counter: str,
    max_value: Optional[float] = None,
) -> CounterTrace:
    """Extract a Figure 6 trace from a search event log.

    Values are normalised by the maximum observed (as the paper does:
    "Counter values are normalized based on the maximum value we
    observed in the search").
    """
    hours, values, marks = [], [], []
    for event in events:
        snapshot = getattr(event, "counters", None)
        if snapshot and counter in snapshot:
            value = float(snapshot[counter])
        elif event.counter == counter:
            value = event.counter_value
        else:
            continue
        hours.append(event.time_seconds / 3600.0)
        values.append(value)
        if event.new_anomaly_index is not None:
            marks.append(event.time_seconds / 3600.0)
    peak = max_value if max_value is not None else (max(values) if values else 1.0)
    peak = peak or 1.0
    return CounterTrace(
        approach=approach,
        counter=counter,
        hours=tuple(hours),
        normalised_values=tuple(v / peak for v in values),
        anomaly_marks=tuple(marks),
    )
