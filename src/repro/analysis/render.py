"""Plain-text rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.figures import CounterTrace, TimeToFindSeries


def render_table(rows: Sequence[Mapping], columns: Sequence[str] = None) -> str:
    """Fixed-width text table from a list of row dicts."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(r.get(col, ""))) for r in rows))
        for col in columns
    }
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    rule = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def render_time_to_find(series_list: Sequence[TimeToFindSeries]) -> str:
    """Figure 4/5 as a text table: rows = k-th anomaly, one column each."""
    if not series_list:
        return "(no series)"
    depth = max(len(s.mean_hours) for s in series_list)
    rows = []
    for k in range(depth):
        row = {"k-th anomaly": k + 1}
        for series in series_list:
            if k < len(series.mean_hours) and series.support[k] > 0:
                row[series.approach] = (
                    f"{series.mean_hours[k]:.1f}h"
                    f"±{series.std_hours[k]:.1f}"
                    f" ({series.support[k]}/{series.seeds})"
                )
            else:
                row[series.approach] = "-"
        rows.append(row)
    return render_table(rows)


def render_counter_trace(trace: CounterTrace, width: int = 60) -> str:
    """ASCII sparkline of a Figure 6 trace with anomaly marks."""
    buckets = trace.bucketed(width)
    if not buckets:
        return "(empty trace)"
    glyphs = " .:-=+*#%@"
    line = "".join(
        glyphs[min(int(v * (len(glyphs) - 1)), len(glyphs) - 1)]
        for _, v in buckets
    )
    span = max(h for h, _ in buckets) or 1.0
    marks = [" "] * width
    for mark in trace.anomaly_marks:
        index = min(int(mark / span * (width - 1)), width - 1)
        marks[index] = "X"
    return (
        f"{trace.approach} / {trace.counter} "
        f"(normalised, {span:.1f}h span; X = anomaly found)\n"
        f"|{line}|\n|{''.join(marks)}|"
    )
