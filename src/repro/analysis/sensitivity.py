"""One-dimensional sensitivity profiles around a workload.

Given a (typically anomalous) workload, sweep one search dimension
across its ladder holding the rest fixed, and record the subsystem's
response — throughput, pause ratio, verdict.  This is the quantitative
view behind an MFS condition: not just *where* the necessary region's
boundary sits, but how sharply the subsystem degrades across it.
Operators use these profiles to pick safety margins (§7.3's "configure
receive queue depth carefully").
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.monitor import AnomalyMonitor
from repro.core.space import ORDERED_DIMENSIONS, SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import Subsystem
from repro.hardware.workload import WorkloadDescriptor


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """One sweep sample."""

    value: float
    wire_gbps: float
    pause_ratio: float
    symptom: str


@dataclasses.dataclass(frozen=True)
class SensitivityProfile:
    """The response curve of one dimension."""

    dimension: str
    baseline_value: float
    points: tuple[SensitivityPoint, ...]

    @property
    def anomalous_values(self) -> tuple[float, ...]:
        return tuple(
            p.value for p in self.points if p.symptom != "healthy"
        )

    @property
    def boundary(self) -> Optional[tuple[float, float]]:
        """The (last healthy, first anomalous) values along the sweep,
        or None when the sweep never changes verdict."""
        previous = None
        for point in self.points:
            if previous is not None and (
                (previous.symptom == "healthy")
                != (point.symptom == "healthy")
            ):
                healthy, anomalous = (
                    (previous, point)
                    if previous.symptom == "healthy"
                    else (point, previous)
                )
                return (healthy.value, anomalous.value)
            previous = point
        return None

    def render(self, width: int = 40) -> str:
        """ASCII profile: one row per swept value."""
        peak = max((p.wire_gbps for p in self.points), default=1.0) or 1.0
        lines = [f"sensitivity of {self.dimension} "
                 f"(baseline {self.baseline_value:g}):"]
        for point in self.points:
            bar = "#" * int(round(point.wire_gbps / peak * width))
            marker = "!" if point.symptom != "healthy" else " "
            lines.append(
                f"  {point.value:>10g} |{bar:<{width}}|{marker} "
                f"{point.wire_gbps:7.1f} Gbps, pause "
                f"{100 * point.pause_ratio:5.1f}%"
            )
        return "\n".join(lines)


class SensitivityAnalyzer:
    """Sweeps dimensions of a workload on one subsystem."""

    def __init__(self, subsystem: Subsystem, noise: float = 0.0) -> None:
        self.subsystem = subsystem
        self.space = SearchSpace.for_subsystem(subsystem)
        self.model = SteadyStateModel(subsystem, noise=noise)
        self.monitor = AnomalyMonitor(subsystem)

    def _measure(self, workload: WorkloadDescriptor) -> SensitivityPoint:
        measurement = self.model.evaluate(
            workload, np.random.default_rng(0)
        )
        verdict = self.monitor.classify(measurement)
        return SensitivityPoint(
            value=0.0,  # filled by caller
            wire_gbps=measurement.min_direction_wire_gbps,
            pause_ratio=measurement.pause_ratio,
            symptom=verdict.symptom,
        )

    def profile(
        self, workload: WorkloadDescriptor, dimension: str
    ) -> SensitivityProfile:
        """Sweep one ordered dimension across its full ladder."""
        if dimension not in ORDERED_DIMENSIONS:
            raise ValueError(
                f"{dimension!r} is not a sweepable ordered dimension"
            )
        points = []
        for value in self.space.ordered_choices(dimension):
            probe = self.space.with_value(workload, dimension, value)
            if getattr(probe, dimension) != value:
                continue  # coercion clamped the value away
            sample = self._measure(probe)
            points.append(dataclasses.replace(sample, value=float(value)))
        return SensitivityProfile(
            dimension=dimension,
            baseline_value=float(getattr(workload, dimension)),
            points=tuple(points),
        )

    def profile_all(
        self, workload: WorkloadDescriptor
    ) -> list[SensitivityProfile]:
        """Profiles for every sweepable dimension, skipping flat ones."""
        profiles = []
        for dimension in ORDERED_DIMENSIONS:
            if len(self.space.ordered_choices(dimension)) < 2:
                continue
            profile = self.profile(workload, dimension)
            if profile.points:
                profiles.append(profile)
        return profiles
