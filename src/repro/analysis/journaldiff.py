"""Cross-run regression diffing over flight-recorder journals.

``repro journal diff BASELINE CANDIDATE`` compares two journals of the
*same* configuration (subsystem, budget, counter mode — typically two
builds of the tool, or the same build before and after a change) and
answers the observatory's gating question: **did search quality
regress?**

Three metrics are *gated* — a regression in any of them fails the diff:

* ``anomalies`` — distinct MFSes found (higher is better);
* ``time_to_first_anomaly_seconds`` — simulated seconds until the first
  anomalous experiment (lower is better);
* ``coverage_fraction`` — mean per-dimension fraction of the workload
  space visited, recomputed from the journal's experiment records so a
  self-diff is exactly zero (higher is better).

Everything else (experiments, skips, SA acceptance rate, per-phase
profiler self-times) is *informational*: printed for the reader, never
gating, because wall-clock and stochastic-rate drift between runs is
expected noise.

A metric the baseline reports but the candidate lacks (e.g. the
baseline found an anomaly and the candidate never did) is always a
regression; the reverse — the candidate gaining a metric — is an
improvement.  Comparisons apply a relative tolerance (default 5%) so
benign jitter does not gate.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.obs.coverage import coverage_from_records
from repro.obs.journal import journal_summary
from repro.obs.profiler import events_from_records, self_times
from repro.obs.sadiag import acceptance_rate, time_to_first_anomaly
from repro.obs.schema import RECORD_FIELDS

#: Default relative tolerance before a worse value counts as a regression.
DEFAULT_TOLERANCE = 0.05

#: Gated metrics: name → True when higher is better.
GATED_METRICS = {
    "anomalies": True,
    "time_to_first_anomaly_seconds": False,
    "coverage_fraction": True,
}

#: Informational metrics journal_metrics also reports (never gating).
#: The latency family is informational because schema-v3 journals carry
#: no latency records at all: gating would turn every old-vs-new diff
#: into a false regression instead of an honest "-" column.
INFO_METRICS = (
    "experiments",
    "skips",
    "elapsed_seconds",
    "acceptance_rate",
    "latency_records",
    "latency_p99_us_median",
    "latency_inflation_max",
    "isolation_experiments",
    "interference_min",
)


def unknown_record_kinds(records: list[dict]) -> dict:
    """Kind → count of records the current schema does not know.

    Journals written by a *newer* build may carry record types this
    build's :data:`~repro.obs.schema.RECORD_FIELDS` has never heard of.
    Readers skip them, but silently dropping data is how cross-version
    diffs grow quiet blind spots — so every skipping surface reports
    what it skipped through this one helper.
    """
    counts: dict[str, int] = {}
    for record in records:
        kind = record.get("t", "?")
        if kind not in RECORD_FIELDS:
            counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))


def describe_unknown_kinds(records: list[dict]) -> list[str]:
    """One log line per unknown record kind (empty when none)."""
    return [
        f"unknown record kind skipped: {kind} (n={count})"
        for kind, count in unknown_record_kinds(records).items()
    ]


def latency_metrics(records: list[dict]) -> dict:
    """The journal's latency family: count, median p99, worst inflation.

    A journal without latency records (schema v3, or a run with the
    trigger disabled) yields count 0 and ``None`` aggregates, which the
    diff renders as "-" rather than inventing a zero latency.
    """
    p99s: list[float] = []
    inflations: list[float] = []
    for record in records:
        if record.get("t") != "latency":
            continue
        p99s.append(float(record["p99_us"]))
        inflations.append(float(record["inflation"]))
    p99s.sort()
    median: Optional[float] = None
    if p99s:
        mid = len(p99s) // 2
        if len(p99s) % 2:
            median = p99s[mid]
        else:
            median = (p99s[mid - 1] + p99s[mid]) / 2.0
    return {
        "latency_records": len(p99s),
        "latency_p99_us_median": median,
        "latency_inflation_max": max(inflations) if inflations else None,
    }


def isolation_metrics(records: list[dict]) -> dict:
    """The journal's isolation family: co-run experiments, worst case.

    Solo journals (schema ≤ v5, or any run without ``--victim``) carry
    no ``interference`` fields and yield count 0 with a ``None``
    minimum, rendered as "-" by the diff.  Non-finite interference
    values (the zero-fair-share sentinel) are excluded from the
    minimum — NaN would poison the comparison, not inform it.
    """
    values: list[float] = []
    for record in records:
        if record.get("t") != "experiment":
            continue
        interference = record.get("interference")
        if interference is None:
            continue
        value = float(interference)
        if math.isfinite(value):
            values.append(value)
    return {
        "isolation_experiments": len(values),
        "interference_min": min(values) if values else None,
    }


def mfs_shape_key(mfs_record: dict) -> str:
    """Canonical shape label of one journaled MFS.

    The shape abstracts the region away from its exact bounds: symptom
    class, how many interval and membership conditions constrain it,
    and whether it needs a mixed message pattern.  Refactors that move a
    bound slightly keep the shape; refactors that change *what kind* of
    anomaly regions the search extracts do not — which is exactly the
    granularity the canary's population gate wants.
    """
    return (
        f"{mfs_record.get('symptom', '?')}"
        f"|i{len(mfs_record.get('intervals', ()))}"
        f"|m{len(mfs_record.get('memberships', ()))}"
        f"|x{int(bool(mfs_record.get('requires_mix')))}"
    )


def mfs_shape_counts(records: list[dict]) -> dict:
    """Multiset (shape → count) of every MFS journaled as an anomaly."""
    counts: dict[str, int] = {}
    for record in records:
        if record.get("t") != "anomaly":
            continue
        key = mfs_shape_key(record.get("mfs", {}))
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def mfs_condition_sizes(records: list[dict]) -> list[int]:
    """Sorted multiset of per-MFS condition counts (the MFS 'sizes')."""
    sizes = []
    for record in records:
        if record.get("t") != "anomaly":
            continue
        mfs = record.get("mfs", {})
        sizes.append(
            len(mfs.get("intervals", ()))
            + len(mfs.get("memberships", ()))
            + (1 if mfs.get("requires_mix") else 0)
        )
    return sorted(sizes)


def journal_metrics(records: list[dict]) -> dict:
    """Distil one journal into the comparable metric dict.

    Coverage is recomputed from the journal's experiment/skip/anomaly
    records (not read from ``coverage`` snapshots) so that diffing a
    journal against itself yields exactly zero on every gated metric.
    """
    summary = journal_summary(records)
    trackers = coverage_from_records(records)
    coverage: Optional[float] = None
    if trackers:
        coverage = sum(t.touched_fraction() for t in trackers) / len(trackers)
    elapsed = sum(
        float(r.get("elapsed_seconds", 0.0))
        for r in records if r.get("t") == "run_end"
    )
    spans = self_times(events_from_records(records))
    metrics = {
        "anomalies": summary["anomalies"],
        "time_to_first_anomaly_seconds": time_to_first_anomaly(records),
        "coverage_fraction": coverage,
        "experiments": summary["experiments"],
        "skips": summary["skips"],
        "elapsed_seconds": elapsed,
        "acceptance_rate": acceptance_rate(records),
        "span_self_seconds": dict(sorted(spans.items())),
        "mfs_shape_counts": mfs_shape_counts(records),
        "mfs_condition_sizes": mfs_condition_sizes(records),
    }
    metrics.update(latency_metrics(records))
    metrics.update(isolation_metrics(records))
    return metrics


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One compared metric."""

    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    gated: bool
    regressed: bool
    note: str = ""


@dataclasses.dataclass
class DiffResult:
    """Outcome of one baseline-vs-candidate comparison."""

    entries: list[DiffEntry]
    tolerance: float

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _compare(
    metric: str, baseline, candidate, higher_better: bool, tolerance: float
) -> DiffEntry:
    if baseline is None and candidate is None:
        return DiffEntry(metric, None, None, True, False, "absent in both")
    if baseline is None:
        return DiffEntry(
            metric, None, candidate, True, False, "candidate gained metric"
        )
    if candidate is None:
        return DiffEntry(
            metric, baseline, None, True, True,
            "baseline reports it, candidate does not",
        )
    baseline = float(baseline)
    candidate = float(candidate)
    scale = max(abs(baseline), abs(candidate), 1e-12)
    delta = (candidate - baseline) / scale
    worse = -delta if higher_better else delta
    regressed = worse > tolerance
    note = f"{delta:+.1%}"
    return DiffEntry(metric, baseline, candidate, True, regressed, note)


def diff_journals(
    baseline_records: list[dict],
    candidate_records: list[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> DiffResult:
    """Compare two journals; only :data:`GATED_METRICS` can regress."""
    base = journal_metrics(baseline_records)
    cand = journal_metrics(candidate_records)
    entries = [
        _compare(name, base[name], cand[name], higher_better, tolerance)
        for name, higher_better in GATED_METRICS.items()
    ]
    for name in INFO_METRICS:
        entries.append(
            DiffEntry(name, base[name], cand[name], False, False)
        )
    base_spans = base["span_self_seconds"]
    cand_spans = cand["span_self_seconds"]
    for path in sorted(set(base_spans) | set(cand_spans)):
        entries.append(
            DiffEntry(
                f"self_seconds[{path}]",
                base_spans.get(path), cand_spans.get(path),
                False, False,
            )
        )
    return DiffResult(entries=entries, tolerance=tolerance)


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def render_diff(result: DiffResult) -> str:
    """Human-readable diff table plus an explicit final verdict line."""
    header = f"{'metric':<34} {'baseline':>12} {'candidate':>12}  status"
    lines = [header, "-" * len(header)]
    for entry in result.entries:
        if entry.regressed:
            status = "REGRESSED"
        elif entry.gated:
            status = "ok"
        else:
            status = "info"
        if entry.note:
            status = f"{status} ({entry.note})"
        lines.append(
            f"{entry.metric:<34} {_format_value(entry.baseline):>12} "
            f"{_format_value(entry.candidate):>12}  {status}"
        )
    if result.ok:
        lines.append(
            f"verdict: no regressions "
            f"(tolerance {result.tolerance:.0%} on gated metrics)"
        )
    else:
        names = ", ".join(e.metric for e in result.regressions)
        lines.append(f"verdict: REGRESSION in {names}")
    return "\n".join(lines)
