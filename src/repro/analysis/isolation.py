"""The isolation-anomaly catalog: Table 2 for adversarial neighbors.

The paper's Table 2 catalogs solo performance anomalies per subsystem;
this module builds its multi-tenant twin.  For each subsystem it runs a
quick-budget adversarial-neighbor search (a fixed victim pinned on the
testbed, the SA searching the *attacker*), collects every isolation
anomaly the monitor flagged, and — because a catalog entry nobody can
reproduce is worthless — replays each minimized attacker through
:func:`repro.core.reproducer.reproduce_mfs` in co-run mode before
listing it.

The default victim is deliberately fragile: small fixed-size messages
from a tiny registered region, so its cache residency is minimal and
its miss exposure maximal.  Every subsystem A–H has finite QPC/MTT
caches, which makes at least one victim-degradation anomaly findable
everywhere — the property the catalog (and its CI job) asserts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional, Sequence, Union

from repro.core.collie import Collie, SearchReport
from repro.core.reproducer import reproduce_mfs
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import WorkloadDescriptor

#: Catalog defaults: a quick budget finds the low-hanging adversaries;
#: the seed pins the run so the catalog is deterministic.
CATALOG_BUDGET_HOURS = 0.3
CATALOG_SEED = 3
DEFAULT_VICTIM_SHARE = 0.5

#: Column layout of the rendered catalog (Table 2's shape, adversarial
#: edition: the trigger columns collapse into the minimized attacker).
ISOLATION_COLUMNS = (
    "#", "Subsystem", "Symptom", "Minimized attacker",
    "Interference", "Reproduced",
)


def default_victim() -> WorkloadDescriptor:
    """The standard catalog victim: small messages, tiny MR footprint.

    512-byte messages keep miss exposure at its maximum (every miss
    stalls a full WR) and the 512-byte MR keeps the victim's own cache
    residency negligible — the attacker owns the contention story.
    """
    return WorkloadDescriptor(msg_sizes_bytes=(512,), mr_bytes=512)


@dataclasses.dataclass(frozen=True)
class IsolationFinding:
    """One cataloged isolation anomaly: a verified adversarial neighbor."""

    subsystem: str
    #: Position within the subsystem's anomaly set (0-based).
    index: int
    #: Monitor verdict class (victim degraded / victim latency / pause).
    symptom: str
    #: The minimized attacker's region, ``MinimalFeatureSet.describe()``.
    attacker: str
    #: Victim shared throughput over fair share at the triggering
    #: experiment (``None`` when the trigger predates the anomaly's
    #: extraction or carried no finite interference).
    interference: Optional[float]
    #: Whether the minimized attacker reproduced the symptom in a fresh
    #: co-run replay.
    reproduced: bool

    @property
    def tag(self) -> str:
        """Catalog tag, Table-2 style (``I-A1``: isolation, subsystem A)."""
        return f"I-{self.subsystem}{self.index + 1}"


def _trigger_interference(
    report: SearchReport, anomaly_index: int
) -> Optional[float]:
    """Interference of the experiment that triggered one anomaly."""
    for event in report.events:
        if event.new_anomaly_index != anomaly_index:
            continue
        interference = getattr(event, "interference", None)
        if interference is not None and math.isfinite(interference):
            return interference
        return None
    return None


def isolation_search(
    subsystem: Union[Subsystem, str],
    victim: Optional[WorkloadDescriptor] = None,
    victim_share: float = DEFAULT_VICTIM_SHARE,
    budget_hours: float = CATALOG_BUDGET_HOURS,
    seed: int = CATALOG_SEED,
    recorder=None,
    cache=None,
) -> SearchReport:
    """One quick-budget adversarial-neighbor search against the victim."""
    if isinstance(subsystem, str):
        subsystem = get_subsystem(subsystem)
    if victim is None:
        victim = default_victim()
    return Collie(
        subsystem,
        budget_hours=budget_hours,
        seed=seed,
        victim=victim,
        victim_share=victim_share,
        recorder=recorder,
        cache=cache,
    ).run()


def catalog_findings(
    report: SearchReport,
    victim: WorkloadDescriptor,
    victim_share: float = DEFAULT_VICTIM_SHARE,
) -> list[IsolationFinding]:
    """Verify one isolation report's anomalies into catalog findings.

    Every MFS witness (the minimized attacker) is replayed through the
    co-run reproducer; the catalog records the honest outcome rather
    than filtering failures out — a non-reproducing entry is a finding
    about the *search*, and hiding it would defeat the catalog's point.
    """
    findings = []
    for index, mfs in enumerate(report.anomalies):
        result = reproduce_mfs(
            mfs, report.subsystem_name,
            victim=victim, victim_share=victim_share,
        )
        findings.append(IsolationFinding(
            subsystem=report.subsystem_name,
            index=index,
            symptom=mfs.symptom,
            attacker=mfs.describe(),
            interference=_trigger_interference(report, index),
            reproduced=result.reproduced,
        ))
    return findings


def isolation_catalog(
    subsystems: Optional[Sequence[str]] = None,
    victim: Optional[WorkloadDescriptor] = None,
    victim_share: float = DEFAULT_VICTIM_SHARE,
    budget_hours: float = CATALOG_BUDGET_HOURS,
    seed: int = CATALOG_SEED,
) -> list[IsolationFinding]:
    """The full catalog: search + verify across subsystems (A–H default)."""
    if subsystems is None:
        subsystems = [s.name for s in _all_subsystems()]
    if victim is None:
        victim = default_victim()
    findings: list[IsolationFinding] = []
    for name in subsystems:
        report = isolation_search(
            name, victim=victim, victim_share=victim_share,
            budget_hours=budget_hours, seed=seed,
        )
        findings.extend(catalog_findings(report, victim, victim_share))
    return findings


def _all_subsystems() -> list[Subsystem]:
    from repro.hardware.subsystems import list_subsystems

    return list_subsystems()


def catalog_rows(findings: Iterable[IsolationFinding]) -> list[dict]:
    """Findings as table rows in :data:`ISOLATION_COLUMNS` order."""
    rows = []
    for finding in findings:
        interference = (
            f"{finding.interference:.2f}"
            if finding.interference is not None else "-"
        )
        rows.append({
            "#": finding.tag,
            "Subsystem": finding.subsystem,
            "Symptom": finding.symptom,
            "Minimized attacker": finding.attacker,
            "Interference": interference,
            "Reproduced": "yes" if finding.reproduced else "no",
        })
    return rows
