"""JSON serialisation of search results.

Search campaigns are expensive (hours of simulated testbed time, and on
a real deployment hours of wall-clock); persisting reports lets the
analysis and debugging workflows (§7.3) run long after the search —
match an application workload against a saved MFS set, re-render tables,
diff campaigns.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.collie import SearchReport
from repro.core.mfs import (
    IntervalCondition,
    MembershipCondition,
    MinimalFeatureSet,
)
from repro.hardware.workload import (
    Colocation,
    Direction,
    SGLayout,
    WorkloadDescriptor,
)
from repro.verbs.constants import Opcode, QPType

FORMAT_VERSION = 1


def workload_to_dict(workload: WorkloadDescriptor) -> dict:
    return {
        "qp_type": workload.qp_type.value,
        "opcode": workload.opcode.value,
        "direction": workload.direction.value,
        "colocation": workload.colocation.value,
        "sg_layout": workload.sg_layout.value,
        "mtu": workload.mtu,
        "num_qps": workload.num_qps,
        "wqe_batch": workload.wqe_batch,
        "sge_per_wqe": workload.sge_per_wqe,
        "wq_depth": workload.wq_depth,
        "msg_sizes_bytes": list(workload.msg_sizes_bytes),
        "mrs_per_qp": workload.mrs_per_qp,
        "mr_bytes": workload.mr_bytes,
        "src_device": workload.src_device,
        "dst_device": workload.dst_device,
        "duty_cycle": workload.duty_cycle,
    }


def workload_from_dict(data: dict) -> WorkloadDescriptor:
    return WorkloadDescriptor(
        qp_type=QPType(data["qp_type"]),
        opcode=Opcode(data["opcode"]),
        direction=Direction(data["direction"]),
        colocation=Colocation(data["colocation"]),
        sg_layout=SGLayout(data.get("sg_layout", "even")),
        mtu=data["mtu"],
        num_qps=data["num_qps"],
        wqe_batch=data["wqe_batch"],
        sge_per_wqe=data["sge_per_wqe"],
        wq_depth=data["wq_depth"],
        msg_sizes_bytes=tuple(data["msg_sizes_bytes"]),
        mrs_per_qp=data["mrs_per_qp"],
        mr_bytes=data["mr_bytes"],
        src_device=data["src_device"],
        dst_device=data["dst_device"],
        duty_cycle=data.get("duty_cycle", 1.0),
    )


def mfs_to_dict(mfs: MinimalFeatureSet) -> dict:
    return {
        "symptom": mfs.symptom,
        "witness": workload_to_dict(mfs.witness),
        "intervals": [
            {"dimension": c.dimension, "low": c.low, "high": c.high}
            for c in mfs.intervals
        ],
        "memberships": [
            {"dimension": c.dimension, "allowed": list(c.allowed)}
            for c in mfs.memberships
        ],
        "requires_mix": mfs.requires_mix,
        "found_at_seconds": mfs.found_at_seconds,
        "probe_experiments": mfs.probe_experiments,
    }


def mfs_from_dict(data: dict) -> MinimalFeatureSet:
    return MinimalFeatureSet(
        symptom=data["symptom"],
        witness=workload_from_dict(data["witness"]),
        intervals=tuple(
            IntervalCondition(c["dimension"], c["low"], c["high"])
            for c in data["intervals"]
        ),
        memberships=tuple(
            MembershipCondition(c["dimension"], tuple(c["allowed"]))
            for c in data["memberships"]
        ),
        requires_mix=data["requires_mix"],
        found_at_seconds=data["found_at_seconds"],
        probe_experiments=data["probe_experiments"],
    )


def report_to_dict(report: SearchReport) -> dict:
    """Serialisable view of a search report (events summarised)."""
    return {
        "format_version": FORMAT_VERSION,
        "subsystem": report.subsystem_name,
        "counter_mode": report.counter_mode,
        "use_mfs": report.use_mfs,
        "elapsed_seconds": report.elapsed_seconds,
        "experiments": report.experiments,
        "skipped_points": report.skipped_points,
        "counter_ranking": list(report.counter_ranking),
        "anomalies": [mfs_to_dict(m) for m in report.anomalies],
        "first_hits": report.first_hit_times(),
    }


def save_report(report: SearchReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report_to_dict(report), handle, indent=2, sort_keys=True)


def load_anomalies(path: str) -> list[MinimalFeatureSet]:
    """Load the MFS set of a saved report (for the §7.3 workflows)."""
    with open(path) as handle:
        data = json.load(handle)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported report format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return [mfs_from_dict(m) for m in data["anomalies"]]
