"""Table 1 and Table 2 in the paper's shape."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.hardware.subsystems import list_subsystems
from repro.workloads.appendix import APPENDIX_SETTINGS

#: Table 2's column layout.
TABLE2_COLUMNS = (
    "#", "RNIC", "Direc.", "Transport", "MTU", "WQE", "SGE",
    "WQ depth", "Message Pattern", "# of QPs", "Symptom", "Found",
)

#: Static facts of each Table 2 row: the paper's published trigger
#: conditions, used to label our reproduction output.
_TABLE2_STATIC = {
    "A1": ("CX-6", "-", "UD SEND", "-", ">=64", "-", ">=256", "-", "-"),
    "A2": ("CX-6", "-", "UD SEND", "-", "<=8", "-", ">=1024", "<=1KB", ">=~16"),
    "A3": ("CX-6", "-", "RC READ", "1K", "-", "-", "-", ">=16KB", "-"),
    "A4": ("CX-6", "Bi-", "RC READ", "-", ">=32", ">=4", "-", "-", ">=~160"),
    "A5": ("CX-6", "-", "RC SEND", "1K", ">=64", "-", ">=1024",
           ">=2KB and <=8KB", "-"),
    "A6": ("CX-6", "-", "RC SEND", "1K", "<=16", ">=2", ">=1024", "<=1KB",
           ">=~32"),
    "A7": ("CX-6", "-", "RC WRITE", "-", "No", "-", "-",
           "<=1KB and >=~12K MRs", "-"),
    "A8": ("CX-6", "-", "RC WRITE", "-", "No", "-", "<=16", "<=1KB",
           ">=~500"),
    "A9": ("CX-6", "Bi-", "-", "-", "-", ">=3", "-",
           "mix of <=1KB & >=64KB", "-"),
    "A10": ("CX-6", "Bi-", "RC WRITE", "-", ">=64", "-", "-",
            "mix of <=1KB & >=64KB", ">=~320"),
    "A11": ("CX-6", "Bidirectional cross-socket traffic on particular "
            "servers", "", "", "", "", "", "", ""),
    "A12": ("CX-6", "Particular GPU-Direct RDMA traffic on particular "
            "servers", "", "", "", "", "", "", ""),
    "A13": ("CX-6", "Co-existence of loop traffic and receiving traffic",
            "", "", "", "", "", "", ""),
    "A14": ("P2100", "Bi-", "RC", "4K", "-", ">=4", "-", "-", ">=~1300"),
    "A15": ("P2100", "-", "UD SEND", "-", "-", "-", ">=64", "-", ">=~32"),
    "A16": ("P2100", "-", "RC READ", "1K", ">=8", "-", "-", "-", ">=~500"),
    "A17": ("P2100", "-", "RC SEND", "-", "<=16", "-", ">=128", "<=1KB",
            ">=~64"),
    "A18": ("P2100", "Bi-", "RC", "1K", ">=32", "-", "-", "<=64KB",
            ">=~30"),
}


def table1_rows() -> list[dict]:
    """The testbed inventory, one dict per Table 1 row."""
    return [subsystem.describe_row() for subsystem in list_subsystems()]


def table2_rows(found_tags: Optional[Iterable[str]] = None) -> list[dict]:
    """Table 2: the 18 anomalies, flagged with reproduction status.

    ``found_tags`` is the set of ground-truth tags a search campaign hit;
    omitted, every row reads ``n/a``.
    """
    found = set(found_tags) if found_tags is not None else None
    rows = []
    for setting in APPENDIX_SETTINGS:
        tag = setting.expected_tag
        static = _TABLE2_STATIC[tag]
        if found is None:
            status = "n/a"
        else:
            status = "yes" if tag in found else "no"
        row: Mapping = {
            "#": tag,
            "RNIC": static[0],
            "Direc.": static[1],
            "Transport": static[2],
            "MTU": static[3],
            "WQE": static[4],
            "SGE": static[5],
            "WQ depth": static[6],
            "Message Pattern": static[7],
            "# of QPs": static[8],
            "Symptom": setting.expected_symptom,
            "Found": status,
        }
        rows.append(dict(row))
    # Table 2 orders rows by number; our tags embed it.
    return sorted(rows, key=lambda r: int(r["#"][1:]))
