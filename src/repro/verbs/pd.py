"""Protection domains: the ownership scope for MRs and QPs."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.verbs.constants import AccessFlags
from repro.verbs.exceptions import MemoryRegistrationError
from repro.verbs.memory import MemoryRegion, MemoryRegionTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.verbs.device import Context


class ProtectionDomain:
    """``struct ibv_pd``: groups MRs and QPs that may reference each other.

    Keys are allocated from a context-wide counter so lkeys/rkeys are unique
    per device, as on real hardware.
    """

    def __init__(self, context: "Context", handle: int) -> None:
        self.context = context
        self.handle = handle
        self.regions = MemoryRegionTable()
        self._keys = itertools.count(handle * 1_000_000 + 1)

    def reg_mr(
        self,
        length: int,
        access: AccessFlags = AccessFlags.LOCAL_WRITE,
        device: str = "numa0",
    ) -> MemoryRegion:
        """Allocate and register a buffer of ``length`` bytes.

        ``device`` names the backing memory (``numa0``, ``numa1``,
        ``gpu0`` …) and must exist on the owning host's topology when the
        context is attached to one.
        """
        attrs = self.context.device.attributes
        if len(self.regions) >= attrs.max_mr:
            raise MemoryRegistrationError(
                f"device supports at most {attrs.max_mr} memory regions"
            )
        host = self.context.host
        if host is not None and not host.has_memory_device(device):
            raise MemoryRegistrationError(
                f"host {host.name!r} has no memory device {device!r}"
            )
        addr = self.context.allocator.allocate(length)
        lkey = next(self._keys)
        rkey = next(self._keys)
        region = MemoryRegion(
            addr=addr,
            length=length,
            lkey=lkey,
            rkey=rkey,
            access=access,
            device=device,
        )
        self.regions.add(region)
        return region

    def dereg_mr(self, region: MemoryRegion) -> None:
        """Unregister a region; subsequent key lookups will fail."""
        self.regions.remove(region)

    @property
    def mr_count(self) -> int:
        return len(self.regions)

    @property
    def pinned_pages(self) -> int:
        return self.regions.total_pages
