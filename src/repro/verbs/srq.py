"""Shared Receive Queues (``ibv_srq``).

An SRQ lets many QPs draw receive WQEs from one pool instead of
per-QP receive queues — the standard mitigation for receive-buffer
over-provisioning, and directly relevant to Collie's RX-WQE-cache
anomalies: with an SRQ the RNIC's receive-WQE working set is the SRQ
depth, not ``num_qps × wq_depth``.

The verbs API surface mirrors libibverbs: create with a depth and an
SG-entry limit, post receives to the SRQ, attach QPs at creation time;
SENDs arriving at an attached QP consume from the shared pool.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional

from repro.verbs.exceptions import QPCapacityError, WorkRequestError
from repro.verbs.wr import RecvWorkRequest


@dataclasses.dataclass(frozen=True)
class SRQAttributes:
    """``struct ibv_srq_init_attr`` subset."""

    max_wr: int = 1024
    max_sge: int = 16
    #: Reclaim watermark: verbs fires an async event when the queue
    #: drains below this; we expose it as a simple property check.
    srq_limit: int = 0

    def __post_init__(self) -> None:
        if self.max_wr <= 0 or self.max_sge <= 0:
            raise ValueError("max_wr and max_sge must be positive")
        if not 0 <= self.srq_limit <= self.max_wr:
            raise ValueError("srq_limit must lie within [0, max_wr]")


class SharedReceiveQueue:
    """``struct ibv_srq``: one receive-WQE pool shared across QPs."""

    def __init__(self, attrs: Optional[SRQAttributes] = None, handle: int = 0):
        self.attrs = attrs or SRQAttributes()
        self.handle = handle
        self._queue: collections.deque[RecvWorkRequest] = collections.deque()
        self.posted = 0
        self.consumed = 0
        self.attached_qps = 0

    def __len__(self) -> int:
        return len(self._queue)

    def post_recv(self, wr: RecvWorkRequest) -> None:
        """``ibv_post_srq_recv``."""
        if len(wr.sg_list) > self.attrs.max_sge:
            raise WorkRequestError(
                f"{len(wr.sg_list)} SG entries exceeds SRQ max_sge="
                f"{self.attrs.max_sge}"
            )
        if len(self._queue) >= self.attrs.max_wr:
            raise QPCapacityError(
                f"SRQ full (max_wr={self.attrs.max_wr})"
            )
        self._queue.append(wr)
        self.posted += 1

    def take(self) -> Optional[RecvWorkRequest]:
        """Consume one receive WQE (RNIC side); None when empty."""
        if not self._queue:
            return None
        self.consumed += 1
        return self._queue.popleft()

    @property
    def below_limit(self) -> bool:
        """Whether the armed low-watermark event would have fired."""
        return len(self._queue) < self.attrs.srq_limit

    def __repr__(self) -> str:
        return (
            f"SharedReceiveQueue(depth={len(self._queue)}/"
            f"{self.attrs.max_wr}, qps={self.attached_qps})"
        )
