"""Memory regions and the per-host virtual address allocator.

A :class:`MemoryRegion` is the verbs object the RNIC's MMU translates: it
pins a byte buffer, records which physical memory device backs it (a NUMA
node's DRAM or a GPU), and carries the local/remote keys used for access
checks.  The number of registered regions and their page counts feed the
MTT-cache model in :mod:`repro.hardware.rnic` (paper §4, Dimension 2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.verbs.constants import AccessFlags
from repro.verbs.exceptions import AccessViolationError, MemoryRegistrationError

#: Page size used for translation-table accounting (x86 default).
PAGE_BYTES = 4096

#: Upper bound on a single registration; matches common ``ulimit -l`` style
#: pinning limits rather than any verbs-spec constant.
MAX_MR_BYTES = 16 * 1024 ** 3


class MemoryAllocator:
    """Hands out non-overlapping virtual address ranges for one host.

    Real applications get addresses from ``malloc``/``cudaMalloc``; the
    simulation needs the same property — distinct buffers never alias — so
    registered regions can be identified by address during access checks.
    """

    #: Base of the simulated heap; arbitrary but non-zero so that a zero
    #: address is always invalid, like a NULL pointer.
    BASE_ADDRESS = 0x10_0000_0000

    def __init__(self) -> None:
        self._next = self.BASE_ADDRESS

    def allocate(self, length: int, alignment: int = PAGE_BYTES) -> int:
        """Reserve ``length`` bytes and return the starting virtual address."""
        if length <= 0:
            raise MemoryRegistrationError(f"cannot allocate {length} bytes")
        remainder = self._next % alignment
        if remainder:
            self._next += alignment - remainder
        address = self._next
        self._next += length
        return address


@dataclasses.dataclass
class MemoryRegion:
    """A pinned, registered buffer the RNIC may DMA to/from.

    Attributes mirror ``struct ibv_mr``; ``device`` is the simulation's
    addition naming the physical memory the buffer lives on (used by the
    host-topology dimension of the search space).
    """

    addr: int
    length: int
    lkey: int
    rkey: int
    access: AccessFlags
    device: str = "numa0"
    _buffer: bytearray = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise MemoryRegistrationError(
                f"memory region length must be positive, got {self.length}"
            )
        if self.length > MAX_MR_BYTES:
            raise MemoryRegistrationError(
                f"memory region of {self.length} bytes exceeds the "
                f"{MAX_MR_BYTES}-byte pinning limit"
            )
        if self._buffer is None:
            self._buffer = bytearray(min(self.length, self._MATERIALISE_LIMIT))

    #: Buffers larger than this are backed by a smaller wrap-around bytearray
    #: so multi-gigabyte registrations do not consume real RAM.  Functional
    #: data movement only ever touches offsets modulo the backing size.
    _MATERIALISE_LIMIT = 64 * 1024 * 1024

    @property
    def end(self) -> int:
        """One past the last valid address of the region."""
        return self.addr + self.length

    @property
    def page_count(self) -> int:
        """Translation-table entries this region pins (ceil of pages)."""
        return -(-self.length // PAGE_BYTES)

    def contains(self, addr: int, length: int) -> bool:
        """Whether ``[addr, addr+length)`` lies entirely inside the region."""
        return self.addr <= addr and addr + length <= self.end

    def check_access(self, addr: int, length: int, needed: AccessFlags) -> None:
        """Validate an access or raise :class:`AccessViolationError`.

        A zero-length access is legal at any address inside the region
        (verbs permits zero-byte messages).
        """
        if length < 0:
            raise AccessViolationError(f"negative access length {length}")
        if not self.contains(addr, max(length, 0)):
            raise AccessViolationError(
                f"access [{addr:#x}, +{length}) outside region "
                f"[{self.addr:#x}, +{self.length})"
            )
        if needed and not (self.access & needed) == needed:
            raise AccessViolationError(
                f"region lkey={self.lkey} lacks {needed!r} "
                f"(has {self.access!r})"
            )

    # -- functional byte access ------------------------------------------

    def _span(self, addr: int, length: int) -> range:
        backing = len(self._buffer)
        offset = (addr - self.addr) % backing
        return range(offset, offset + length)

    def read(self, addr: int, length: int) -> bytes:
        """Copy ``length`` bytes out of the region (bounds already checked)."""
        backing = len(self._buffer)
        out = bytearray(length)
        offset = (addr - self.addr) % backing
        for i in range(length):
            out[i] = self._buffer[(offset + i) % backing]
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Copy ``data`` into the region at ``addr``."""
        backing = len(self._buffer)
        offset = (addr - self.addr) % backing
        for i, byte in enumerate(data):
            self._buffer[(offset + i) % backing] = byte


class MemoryRegionTable:
    """Registration table of one protection domain.

    Provides lkey/rkey lookup for the datapath and aggregate statistics
    (region count, pinned pages) for the MTT-cache model.
    """

    def __init__(self) -> None:
        self._by_lkey: dict[int, MemoryRegion] = {}
        self._by_rkey: dict[int, MemoryRegion] = {}

    def add(self, region: MemoryRegion) -> None:
        self._by_lkey[region.lkey] = region
        self._by_rkey[region.rkey] = region

    def remove(self, region: MemoryRegion) -> None:
        self._by_lkey.pop(region.lkey, None)
        self._by_rkey.pop(region.rkey, None)

    def by_lkey(self, lkey: int) -> Optional[MemoryRegion]:
        return self._by_lkey.get(lkey)

    def by_rkey(self, rkey: int) -> Optional[MemoryRegion]:
        return self._by_rkey.get(rkey)

    def lookup_local(
        self, lkey: int, addr: int, length: int, needed: AccessFlags
    ) -> MemoryRegion:
        """Resolve and access-check a local SG entry."""
        region = self.by_lkey(lkey)
        if region is None:
            raise AccessViolationError(f"unknown lkey {lkey}")
        region.check_access(addr, length, needed)
        return region

    def lookup_remote(
        self, rkey: int, addr: int, length: int, needed: AccessFlags
    ) -> MemoryRegion:
        """Resolve and access-check a remote address/rkey pair."""
        region = self.by_rkey(rkey)
        if region is None:
            raise AccessViolationError(f"unknown rkey {rkey}")
        region.check_access(addr, length, needed)
        return region

    def __len__(self) -> int:
        return len(self._by_lkey)

    def __iter__(self):
        return iter(self._by_lkey.values())

    @property
    def total_pages(self) -> int:
        """Total pinned translation entries across all regions."""
        return sum(region.page_count for region in self._by_lkey.values())
