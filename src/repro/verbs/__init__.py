"""A from-scratch software implementation of the RDMA ``verbs`` API.

This package is the "narrow waist" the paper builds its search space on:
protection domains, memory regions, completion queues, queue pairs with the
standard RESET/INIT/RTR/RTS state machine, work requests with scatter-gather
lists, and the three transport types (RC, UC, UD) with SEND/RECV, RDMA WRITE
and RDMA READ opcodes.

Two layers are provided:

* a **functional layer** (:mod:`repro.verbs.datapath`) that really moves
  bytes between registered memory regions of two connected contexts, with
  full access/bounds checking, completion generation and RNR semantics —
  used by tests and examples to demonstrate that workloads are well formed;
* a **descriptor layer** (:func:`repro.verbs.qp.QueuePair.describe`) that
  summarises the verbs-level configuration of a connection for the
  steady-state hardware performance model in :mod:`repro.hardware`.

The API mirrors libibverbs naming (``reg_mr``, ``create_qp``, ``post_send``,
``poll_cq`` …) so that workloads read like real RDMA code.
"""

from repro.verbs.constants import (
    MTU,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    SendFlags,
    WCOpcode,
    WCStatus,
)
from repro.verbs.cq import CompletionQueue, WorkCompletion
from repro.verbs.datapath import DataPath
from repro.verbs.device import Context, Device, DeviceAttributes
from repro.verbs.exceptions import (
    AccessViolationError,
    AddressHandleError,
    CQOverrunError,
    InvalidStateError,
    MemoryRegistrationError,
    QPCapacityError,
    VerbsError,
    WorkRequestError,
)
from repro.verbs.fabric import Fabric
from repro.verbs.memory import MemoryAllocator, MemoryRegion
from repro.verbs.pd import ProtectionDomain
from repro.verbs.srq import SharedReceiveQueue, SRQAttributes
from repro.verbs.qp import QPAttributes, QPCapabilities, QueuePair
from repro.verbs.wr import RecvWorkRequest, ScatterGatherEntry, SendWorkRequest

__all__ = [
    "MTU",
    "AccessFlags",
    "Opcode",
    "QPState",
    "QPType",
    "SendFlags",
    "WCOpcode",
    "WCStatus",
    "CompletionQueue",
    "WorkCompletion",
    "DataPath",
    "Context",
    "Device",
    "DeviceAttributes",
    "AccessViolationError",
    "AddressHandleError",
    "CQOverrunError",
    "InvalidStateError",
    "MemoryRegistrationError",
    "QPCapacityError",
    "VerbsError",
    "WorkRequestError",
    "Fabric",
    "MemoryAllocator",
    "MemoryRegion",
    "ProtectionDomain",
    "SharedReceiveQueue",
    "SRQAttributes",
    "QPAttributes",
    "QPCapabilities",
    "QueuePair",
    "RecvWorkRequest",
    "ScatterGatherEntry",
    "SendWorkRequest",
]
