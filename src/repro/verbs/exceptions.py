"""Exception hierarchy for the software verbs implementation.

Real libibverbs reports errors through ``errno`` return codes; raising a
typed exception is the Pythonic equivalent and keeps workload code explicit
about which failures it tolerates.
"""


class VerbsError(Exception):
    """Base class for every error raised by :mod:`repro.verbs`."""


class InvalidStateError(VerbsError):
    """An operation was attempted in a queue-pair state that forbids it."""


class MemoryRegistrationError(VerbsError):
    """Memory-region registration failed (bad length, exhausted device caps)."""


class AccessViolationError(VerbsError):
    """An address range fell outside a registered region or lacked permission."""


class QPCapacityError(VerbsError):
    """A work queue overflowed its ``max_send_wr``/``max_recv_wr`` capacity."""


class CQOverrunError(VerbsError):
    """More completions were generated than the completion queue can hold."""


class WorkRequestError(VerbsError):
    """A work request was malformed (bad SG list, unsupported opcode...)."""


class AddressHandleError(VerbsError):
    """A UD work request carried a missing or invalid address handle."""
