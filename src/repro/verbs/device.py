"""Devices and contexts: the top-level verbs objects.

A :class:`Device` models one RNIC port with its capability limits;
``open()`` yields a :class:`Context` from which PDs, CQs and QPs are
created, mirroring ``ibv_open_device`` / ``ibv_alloc_pd`` / …
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import TYPE_CHECKING, Optional

from repro.verbs.cq import CompletionQueue
from repro.verbs.exceptions import VerbsError
from repro.verbs.memory import MemoryAllocator
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QPCapabilities, QueuePair
from repro.verbs.constants import QPType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.host import Host


@dataclasses.dataclass(frozen=True)
class DeviceAttributes:
    """``struct ibv_device_attr`` subset: capability ceilings of the RNIC.

    Defaults follow ConnectX-class limits; Collie's search space bounds
    (20K QPs, 200K MRs — paper §4) sit comfortably inside them.
    """

    max_qp: int = 262_144
    max_mr: int = 1_048_576
    max_cq: int = 65_536
    max_cqe: int = 4_194_303
    max_qp_wr: int = 32_768
    max_sge: int = 30
    max_mr_size: int = 2 ** 46


class QPNumberAllocator:
    """Explicit QP-number state for a group of contexts.

    Real RoCE scopes QPNs per device and disambiguates by GID; sharing
    one allocator across every context of a fabric gives the same
    no-aliasing property without modelling GIDs.  Callers that need
    *reproducible* numbering independent of process history — the
    workload engine's functional bursts, anything running under process
    fan-out — pass a fresh allocator per experiment instead of relying
    on the process-global default.
    """

    FIRST_QPN = 0x11

    def __init__(self, start: int = FIRST_QPN) -> None:
        self._numbers = itertools.count(start)

    def next(self) -> int:
        return next(self._numbers)


#: Default allocator for bare contexts (``Device().open()``): process-
#: global, so ad-hoc contexts never alias — at the cost of numbering that
#: depends on everything the process created before.  State-sensitive
#: paths pass their own allocator.
_GLOBAL_QP_NUMBERS = QPNumberAllocator()


class Device:
    """One RNIC as enumerated by ``ibv_get_device_list``."""

    def __init__(
        self,
        name: str = "rxe0",
        attributes: Optional[DeviceAttributes] = None,
    ) -> None:
        self.name = name
        self.attributes = attributes or DeviceAttributes()

    def open(
        self,
        host: Optional["Host"] = None,
        qpn_allocator: Optional[QPNumberAllocator] = None,
    ) -> "Context":
        """Open the device, optionally attaching it to a simulated host."""
        return Context(self, host=host, qpn_allocator=qpn_allocator)

    def __repr__(self) -> str:
        return f"Device({self.name!r})"


class Context:
    """``struct ibv_context``: the handle all other verbs objects hang off."""

    def __init__(
        self,
        device: Device,
        host: Optional["Host"] = None,
        qpn_allocator: Optional[QPNumberAllocator] = None,
    ) -> None:
        self.device = device
        self.host = host
        self._qpn_allocator = qpn_allocator or _GLOBAL_QP_NUMBERS
        self.allocator = MemoryAllocator()
        self._pd_handles = itertools.count(1)
        self._cq_handles = itertools.count(1)
        self.pds: list[ProtectionDomain] = []
        self.cqs: list[CompletionQueue] = []
        self.qps: dict[int, QueuePair] = {}
        self.srqs: list = []

    def alloc_pd(self) -> ProtectionDomain:
        """``ibv_alloc_pd``."""
        pd = ProtectionDomain(self, next(self._pd_handles))
        self.pds.append(pd)
        return pd

    def create_cq(self, cqe: int) -> CompletionQueue:
        """``ibv_create_cq``."""
        if len(self.cqs) >= self.device.attributes.max_cq:
            raise VerbsError("device CQ limit reached")
        if cqe > self.device.attributes.max_cqe:
            raise VerbsError(
                f"requested {cqe} CQEs exceeds device max "
                f"{self.device.attributes.max_cqe}"
            )
        cq = CompletionQueue(cqe, handle=next(self._cq_handles))
        self.cqs.append(cq)
        return cq

    def create_srq(self, attrs=None) -> "SharedReceiveQueue":
        """``ibv_create_srq``: allocate a shared receive queue."""
        from repro.verbs.srq import SharedReceiveQueue

        srq = SharedReceiveQueue(attrs, handle=len(self.srqs) + 1)
        self.srqs.append(srq)
        return srq

    def create_qp(
        self,
        pd: ProtectionDomain,
        qp_type: QPType,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        cap: Optional[QPCapabilities] = None,
        srq=None,
    ) -> QueuePair:
        """``ibv_create_qp``: allocate a QP in RESET state.

        Passing ``srq`` attaches the QP to a shared receive queue; its
        own receive queue is then unused (verbs spec).
        """
        cap = cap or QPCapabilities()
        attrs = self.device.attributes
        if len(self.qps) >= attrs.max_qp:
            raise VerbsError(f"device QP limit {attrs.max_qp} reached")
        if cap.max_send_wr > attrs.max_qp_wr or cap.max_recv_wr > attrs.max_qp_wr:
            raise VerbsError(
                f"work queue depth exceeds device max_qp_wr={attrs.max_qp_wr}"
            )
        if cap.max_send_sge > attrs.max_sge or cap.max_recv_sge > attrs.max_sge:
            raise VerbsError(f"SGE capability exceeds device max_sge={attrs.max_sge}")
        if srq is not None and srq not in self.srqs:
            raise VerbsError("SRQ belongs to a different context")
        qp = QueuePair(
            pd, qp_type, send_cq, recv_cq, cap, self._qpn_allocator.next(),
            srq=srq,
        )
        self.qps[qp.qp_num] = qp
        return qp

    def destroy_qp(self, qp: QueuePair) -> None:
        """``ibv_destroy_qp``."""
        self.qps.pop(qp.qp_num, None)

    def lookup_qp(self, qp_num: int) -> Optional[QueuePair]:
        return self.qps.get(qp_num)

    @property
    def qp_count(self) -> int:
        return len(self.qps)

    @property
    def mr_count(self) -> int:
        return sum(pd.mr_count for pd in self.pds)

    @property
    def pinned_pages(self) -> int:
        return sum(pd.pinned_pages for pd in self.pds)
