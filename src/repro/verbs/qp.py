"""Queue pairs: the connection object of the verbs API.

Implements the standard state machine (RESET → INIT → RTR → RTS), bounded
send/receive work queues, opcode validation per transport type, and a
``describe()`` summary consumed by the hardware performance model.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.verbs.constants import (
    MTU,
    Opcode,
    QP_TRANSITIONS,
    QPState,
    QPType,
    SendFlags,
    SUPPORTED_OPCODES,
)
from repro.verbs.cq import CompletionQueue
from repro.verbs.exceptions import (
    AddressHandleError,
    InvalidStateError,
    QPCapacityError,
    WorkRequestError,
)
from repro.verbs.wr import RecvWorkRequest, SendWorkRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.verbs.pd import ProtectionDomain


@dataclasses.dataclass(frozen=True)
class QPCapabilities:
    """Queue sizing requested at ``create_qp`` (``struct ibv_qp_cap``).

    ``max_recv_wr`` is the paper's "WQ depth" column in Table 2: anomalies
    #1, #2, #5, #6, #15 and #17 all hinge on how deep the receive queue is.
    """

    max_send_wr: int = 128
    max_recv_wr: int = 128
    max_send_sge: int = 16
    max_recv_sge: int = 16
    max_inline_data: int = 0

    def __post_init__(self) -> None:
        for name in ("max_send_wr", "max_recv_wr", "max_send_sge", "max_recv_sge"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclasses.dataclass
class QPAttributes:
    """Subset of ``struct ibv_qp_attr`` used by ``modify_qp``."""

    state: QPState
    path_mtu: Optional[MTU] = None
    dest_qp_num: Optional[int] = None
    rq_psn: Optional[int] = None
    sq_psn: Optional[int] = None
    rnr_retry: int = 7
    timeout: int = 14
    retry_cnt: int = 7


class QueuePair:
    """``struct ibv_qp``: one RDMA connection endpoint.

    A QP is created attached to a PD and a send/recv CQ pair, initially in
    RESET.  ``modify`` walks the verbs state machine; ``post_send`` and
    ``post_recv`` enqueue validated work requests; the datapath (or the
    performance model) consumes them.
    """

    def __init__(
        self,
        pd: "ProtectionDomain",
        qp_type: QPType,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        cap: QPCapabilities,
        qp_num: int,
        srq=None,
    ) -> None:
        self.pd = pd
        self.qp_type = qp_type
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.cap = cap
        self.qp_num = qp_num
        #: Optional shared receive queue; set at creation (verbs spec:
        #: an SRQ association is immutable).  With an SRQ, per-QP
        #: post_recv is illegal and SENDs consume from the shared pool.
        self.srq = srq
        if srq is not None:
            srq.attached_qps += 1
        self.state = QPState.RESET
        self.path_mtu: MTU = MTU.MTU_1024
        self.dest_qp_num: Optional[int] = None
        self.rnr_retry = 7
        self.send_queue: collections.deque[SendWorkRequest] = collections.deque()
        self.recv_queue: collections.deque[RecvWorkRequest] = collections.deque()
        #: Counts for monitoring and the performance model.
        self.posted_sends = 0
        self.posted_recvs = 0
        self.completed_sends = 0
        self.completed_recvs = 0

    # -- state machine ----------------------------------------------------

    def modify(self, attr: QPAttributes) -> None:
        """Transition the QP, validating against the verbs state machine.

        Moving to ERR or RESET is always legal (matching ``ibv_modify_qp``);
        any other transition must be listed in
        :data:`repro.verbs.constants.QP_TRANSITIONS`.  Entering ERR
        flushes every outstanding work request with ``WR_FLUSH_ERR``
        (verbs spec §10.3.1); RESET silently discards them.
        """
        target = attr.state
        if target in (QPState.ERR, QPState.RESET):
            self._enter(target, attr)
            if target is QPState.RESET:
                self.send_queue.clear()
                self.recv_queue.clear()
            else:
                self._flush_queues()
            return
        allowed = QP_TRANSITIONS[self.state]
        if target not in allowed:
            raise InvalidStateError(
                f"QP {self.qp_num}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        if target is QPState.RTR and self._needs_peer() and attr.dest_qp_num is None:
            raise InvalidStateError(
                f"{self.qp_type.value} QP needs dest_qp_num to reach RTR"
            )
        self._enter(target, attr)

    def _enter(self, state: QPState, attr: QPAttributes) -> None:
        self.state = state
        if attr.path_mtu is not None:
            self.path_mtu = attr.path_mtu
        if attr.dest_qp_num is not None:
            self.dest_qp_num = attr.dest_qp_num
        self.rnr_retry = attr.rnr_retry

    def _needs_peer(self) -> bool:
        """RC/UC are connected transports; UD addresses peers per-WR."""
        return self.qp_type in (QPType.RC, QPType.UC)

    def _flush_queues(self) -> None:
        """Complete every outstanding WQE with ``WR_FLUSH_ERR``."""
        from repro.verbs.constants import WCOpcode, WCStatus
        from repro.verbs.cq import WorkCompletion

        while self.send_queue:
            wr = self.send_queue.popleft()
            self.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    status=WCStatus.WR_FLUSH_ERR,
                    opcode=WCOpcode.SEND,
                    byte_len=0,
                    qp_num=self.qp_num,
                )
            )
        while self.recv_queue:
            wr = self.recv_queue.popleft()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    status=WCStatus.WR_FLUSH_ERR,
                    opcode=WCOpcode.RECV,
                    byte_len=0,
                    qp_num=self.qp_num,
                )
            )

    # -- posting ----------------------------------------------------------

    def post_send(self, wr: SendWorkRequest) -> None:
        """Enqueue a send work request (``ibv_post_send``)."""
        if self.state is not QPState.RTS:
            raise InvalidStateError(
                f"QP {self.qp_num} cannot send in state {self.state.value}"
            )
        if wr.opcode not in SUPPORTED_OPCODES[self.qp_type]:
            raise WorkRequestError(
                f"{self.qp_type.value} does not support {wr.opcode.value}"
            )
        if len(wr.sg_list) > self.cap.max_send_sge:
            raise WorkRequestError(
                f"{len(wr.sg_list)} SG entries exceeds max_send_sge="
                f"{self.cap.max_send_sge}"
            )
        if len(self.send_queue) >= self.cap.max_send_wr:
            raise QPCapacityError(
                f"send queue full (max_send_wr={self.cap.max_send_wr})"
            )
        if self.qp_type is QPType.UD:
            if wr.ah is None:
                raise AddressHandleError("UD send requires an address handle")
            if wr.byte_length > int(self.path_mtu):
                raise WorkRequestError(
                    f"UD message of {wr.byte_length}B exceeds path MTU "
                    f"{int(self.path_mtu)}B"
                )
        if wr.send_flags & SendFlags.INLINE:
            if wr.byte_length > self.cap.max_inline_data:
                raise WorkRequestError(
                    f"inline payload of {wr.byte_length}B exceeds "
                    f"max_inline_data={self.cap.max_inline_data}"
                )
        self.send_queue.append(wr)
        self.posted_sends += 1

    def post_send_batch(self, wrs: list[SendWorkRequest]) -> None:
        """Post a linked list of WRs with one doorbell, like real verbs.

        Batch size is a search dimension (Table 2's "WQE" column); the
        performance model reads it off the workload descriptor, but the
        functional layer still validates every element.
        """
        for wr in wrs:
            self.post_send(wr)

    def post_recv(self, wr: RecvWorkRequest) -> None:
        """Enqueue a receive work request (``ibv_post_recv``).

        Legal from INIT onward — applications pre-post receives before
        connecting, and must for SEND-heavy workloads.  Illegal on QPs
        attached to a shared receive queue.
        """
        if self.srq is not None:
            raise InvalidStateError(
                f"QP {self.qp_num} draws receives from an SRQ; "
                "post to the SRQ instead"
            )
        if self.state in (QPState.RESET, QPState.ERR):
            raise InvalidStateError(
                f"QP {self.qp_num} cannot post recv in state {self.state.value}"
            )
        if len(wr.sg_list) > self.cap.max_recv_sge:
            raise WorkRequestError(
                f"{len(wr.sg_list)} SG entries exceeds max_recv_sge="
                f"{self.cap.max_recv_sge}"
            )
        if len(self.recv_queue) >= self.cap.max_recv_wr:
            raise QPCapacityError(
                f"recv queue full (max_recv_wr={self.cap.max_recv_wr})"
            )
        self.recv_queue.append(wr)
        self.posted_recvs += 1

    # -- introspection ------------------------------------------------------

    @property
    def send_queue_depth(self) -> int:
        return len(self.send_queue)

    @property
    def recv_queue_depth(self) -> int:
        return len(self.recv_queue)

    def describe(self) -> dict:
        """Verbs-level summary for the steady-state performance model."""
        return {
            "qp_num": self.qp_num,
            "qp_type": self.qp_type,
            "path_mtu": int(self.path_mtu),
            "max_send_wr": self.cap.max_send_wr,
            "max_recv_wr": self.cap.max_recv_wr,
            "dest_qp_num": self.dest_qp_num,
        }

    def __repr__(self) -> str:
        return (
            f"QueuePair(num={self.qp_num}, type={self.qp_type.value}, "
            f"state={self.state.value}, mtu={int(self.path_mtu)})"
        )
