"""Functional execution of posted work requests.

This layer really moves bytes between registered memory regions with full
access and bounds checking, generating completions with the statuses real
hardware would produce (including receiver-not-ready handling).  The
workload engine runs a short functional burst through it before handing a
workload to the performance model, so malformed search points fail the same
way they would on a real testbed.
"""

from __future__ import annotations

from repro.verbs.constants import (
    GRH_BYTES,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    WCOpcode,
    WCStatus,
)
from repro.verbs.cq import WorkCompletion
from repro.verbs.exceptions import AccessViolationError
from repro.verbs.fabric import Fabric
from repro.verbs.qp import QPAttributes, QueuePair
from repro.verbs.wr import RecvWorkRequest, SendWorkRequest

_WC_OPCODES = {
    Opcode.SEND: WCOpcode.SEND,
    Opcode.WRITE: WCOpcode.RDMA_WRITE,
    Opcode.READ: WCOpcode.RDMA_READ,
    Opcode.FETCH_ADD: WCOpcode.FETCH_ADD,
    Opcode.CMP_SWAP: WCOpcode.CMP_SWAP,
}

#: Per-WQE processing tick of the completion-latency attribution, µs.
#: This is *not* the performance model — :mod:`repro.hardware.model`
#: owns rates and tail distributions — just enough deterministic
#: accounting that every CQE carries a completion latency and
#: head-of-line blocking inside the functional burst is observable.
WQE_TICK_US = 0.5

#: Bytes-proportional term of the attribution, µs per KiB of payload.
US_PER_KB = 0.08


class DataPath:
    """Executes send queues against a fabric, one WQE at a time."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        #: Messages the datapath dropped (UC/UD responder-not-ready).
        self.dropped_messages = 0
        #: qp_num → µs at which that QP's last WQE finished service.
        self._busy_until_us: dict[int, float] = {}
        self._wr_done_us = 0.0

    # -- public API ---------------------------------------------------------

    def process(self, qp: QueuePair, max_wqes: int = None) -> int:
        """Execute up to ``max_wqes`` send WQEs of ``qp``; return the count."""
        executed = 0
        while qp.send_queue and (max_wqes is None or executed < max_wqes):
            wr = qp.send_queue.popleft()
            self._execute(qp, wr)
            executed += 1
        return executed

    def process_all(self, qps: list[QueuePair], rounds: int = 64) -> int:
        """Round-robin execution across QPs until all send queues drain.

        ``rounds`` bounds the loop so a workload that keeps reposting can't
        hang the functional check.
        """
        executed = 0
        for _ in range(rounds):
            progressed = False
            for qp in qps:
                if qp.send_queue:
                    executed += self.process(qp, max_wqes=1)
                    progressed = True
            if not progressed:
                break
        return executed

    # -- execution ------------------------------------------------------------

    def _execute(self, qp: QueuePair, wr: SendWorkRequest) -> None:
        responder = self.fabric.destination_of(qp, wr.ah)
        self._wr_done_us = self._advance(qp, wr.byte_length)
        if wr.opcode is Opcode.SEND:
            status = self._execute_send(qp, wr, responder)
        elif wr.opcode is Opcode.WRITE:
            status = self._execute_write(qp, wr, responder)
        elif wr.opcode is Opcode.READ:
            status = self._execute_read(qp, wr, responder)
        else:
            status = self._execute_atomic(qp, wr, responder)
        self._complete_sender(qp, wr, status)

    def _advance(self, qp: QueuePair, byte_len: int) -> float:
        """Attribute this WQE's completion time on its QP's service clock.

        Service = fixed tick + payload-proportional term; the WQE starts
        only after everything earlier on the same send queue finished,
        so the returned time is queueing-inclusive completion latency.
        """
        service = WQE_TICK_US + (byte_len / 1024.0) * US_PER_KB
        done = self._busy_until_us.get(qp.qp_num, 0.0) + service
        self._busy_until_us[qp.qp_num] = done
        return done

    def _gather(self, qp: QueuePair, wr: SendWorkRequest) -> bytes:
        """Collect the payload described by a local SG list.

        Inline requests carry their bytes in the WQE itself — captured
        at post time, no lkey consulted (``IBV_SEND_INLINE``).
        """
        if wr.inline_payload is not None:
            return wr.inline_payload
        chunks = []
        for entry in wr.sg_list:
            region = qp.pd.regions.lookup_local(
                entry.lkey, entry.addr, entry.length, AccessFlags.NONE
            )
            chunks.append(region.read(entry.addr, entry.length))
        return b"".join(chunks)

    def _scatter_recv(
        self, responder: QueuePair, recv_wr: RecvWorkRequest, payload: bytes
    ) -> WCStatus:
        """Scatter a payload into a consumed receive WQE."""
        if len(payload) > recv_wr.byte_length:
            return WCStatus.LOC_LEN_ERR
        cursor = 0
        for entry in recv_wr.sg_list:
            if cursor >= len(payload):
                break
            take = min(entry.length, len(payload) - cursor)
            region = responder.pd.regions.lookup_local(
                entry.lkey, entry.addr, take, AccessFlags.LOCAL_WRITE
            )
            region.write(entry.addr, payload[cursor : cursor + take])
            cursor += take
        return WCStatus.SUCCESS

    def _take_recv_wqe(self, responder: QueuePair):
        """Pop the next receive WQE: from the SRQ when attached."""
        if responder.srq is not None:
            return responder.srq.take()
        if responder.recv_queue:
            return responder.recv_queue.popleft()
        return None

    def _execute_send(
        self, qp: QueuePair, wr: SendWorkRequest, responder: QueuePair
    ) -> WCStatus:
        payload = self._gather(qp, wr)
        if qp.qp_type is QPType.UD:
            # UD prepends a 40-byte GRH inside the receive buffer.
            payload = b"\x00" * GRH_BYTES + payload
        recv_wr = self._take_recv_wqe(responder)
        if recv_wr is None:
            return self._responder_not_ready(qp, responder)
        status = self._scatter_recv(responder, recv_wr, payload)
        self._complete_receiver(responder, recv_wr, status, len(payload))
        return status if status is WCStatus.SUCCESS else WCStatus.REM_INV_REQ_ERR

    def _responder_not_ready(
        self, qp: QueuePair, responder: QueuePair
    ) -> WCStatus:
        """Handle a SEND arriving with an empty receive queue.

        RC retries ``rnr_retry`` times and then fails the WR and errors the
        QP; UC and UD silently drop the message (unreliable transports).
        The functional layer has no timers, so "retries exhausted" collapses
        to an immediate decision based on the configured retry count: the
        receive queue cannot refill mid-check in synchronous execution.
        """
        if qp.qp_type is QPType.RC:
            qp.modify(QPAttributes(state=QPState.ERR))
            return WCStatus.RNR_RETRY_EXC_ERR
        self.dropped_messages += 1
        return WCStatus.SUCCESS

    def _execute_write(
        self, qp: QueuePair, wr: SendWorkRequest, responder: QueuePair
    ) -> WCStatus:
        payload = self._gather(qp, wr)
        try:
            region = responder.pd.regions.lookup_remote(
                wr.rkey, wr.remote_addr, len(payload), AccessFlags.REMOTE_WRITE
            )
        except AccessViolationError:
            if qp.qp_type is QPType.RC:
                qp.modify(QPAttributes(state=QPState.ERR))
            return WCStatus.REM_ACCESS_ERR
        region.write(wr.remote_addr, payload)
        return WCStatus.SUCCESS

    def _execute_read(
        self, qp: QueuePair, wr: SendWorkRequest, responder: QueuePair
    ) -> WCStatus:
        length = wr.byte_length
        try:
            region = responder.pd.regions.lookup_remote(
                wr.rkey, wr.remote_addr, length, AccessFlags.REMOTE_READ
            )
        except AccessViolationError:
            qp.modify(QPAttributes(state=QPState.ERR))
            return WCStatus.REM_ACCESS_ERR
        payload = region.read(wr.remote_addr, length)
        cursor = 0
        for entry in wr.sg_list:
            region = qp.pd.regions.lookup_local(
                entry.lkey, entry.addr, entry.length, AccessFlags.LOCAL_WRITE
            )
            region.write(entry.addr, payload[cursor : cursor + entry.length])
            cursor += entry.length
        return WCStatus.SUCCESS

    def _execute_atomic(
        self, qp: QueuePair, wr: SendWorkRequest, responder: QueuePair
    ) -> WCStatus:
        """8-byte FETCH_ADD / CMP_SWAP against remote memory.

        The original remote value lands in the requester's SG entry,
        exactly as the verbs spec prescribes.
        """
        from repro.verbs.constants import ATOMIC_BYTES

        try:
            remote = responder.pd.regions.lookup_remote(
                wr.rkey, wr.remote_addr, ATOMIC_BYTES,
                AccessFlags.REMOTE_ATOMIC,
            )
        except AccessViolationError:
            qp.modify(QPAttributes(state=QPState.ERR))
            return WCStatus.REM_ACCESS_ERR
        original = int.from_bytes(
            remote.read(wr.remote_addr, ATOMIC_BYTES), "little"
        )
        if wr.opcode is Opcode.FETCH_ADD:
            updated = (original + wr.compare_add) % (1 << 64)
        else:  # CMP_SWAP
            updated = wr.swap if original == wr.compare_add else original
        remote.write(wr.remote_addr, updated.to_bytes(ATOMIC_BYTES, "little"))
        entry = wr.sg_list[0]
        local = qp.pd.regions.lookup_local(
            entry.lkey, entry.addr, ATOMIC_BYTES, AccessFlags.LOCAL_WRITE
        )
        local.write(entry.addr, original.to_bytes(ATOMIC_BYTES, "little"))
        return WCStatus.SUCCESS

    # -- completions -----------------------------------------------------------

    def _complete_sender(
        self, qp: QueuePair, wr: SendWorkRequest, status: WCStatus
    ) -> None:
        qp.completed_sends += 1
        if wr.signaled or status is not WCStatus.SUCCESS:
            qp.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    status=status,
                    opcode=_WC_OPCODES[wr.opcode],
                    byte_len=wr.byte_length,
                    qp_num=qp.qp_num,
                    latency_us=self._wr_done_us,
                )
            )

    def _complete_receiver(
        self,
        responder: QueuePair,
        recv_wr: RecvWorkRequest,
        status: WCStatus,
        byte_len: int,
    ) -> None:
        responder.completed_recvs += 1
        responder.recv_cq.push(
            WorkCompletion(
                wr_id=recv_wr.wr_id,
                status=status,
                opcode=WCOpcode.RECV,
                byte_len=byte_len,
                qp_num=responder.qp_num,
                latency_us=self._wr_done_us,
            )
        )
