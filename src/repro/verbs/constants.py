"""Enumerations mirroring the libibverbs constants Collie's search space uses."""

import enum


class QPType(enum.Enum):
    """Transport type of a queue pair.

    The three standard types exposed by the verbs API.  Collie's transport
    dimension enumerates all of them (paper §4, Dimension 3).
    """

    RC = "RC"  #: Reliable Connection — acked, ordered, supports 1-sided ops.
    UC = "UC"  #: Unreliable Connection — unacked, supports SEND and WRITE.
    UD = "UD"  #: Unreliable Datagram — unacked, SEND/RECV only, 1 MTU max.


class Opcode(enum.Enum):
    """Work-request opcode for the send queue."""

    SEND = "SEND"
    WRITE = "WRITE"
    READ = "READ"
    FETCH_ADD = "FETCH_ADD"  #: 8-byte atomic fetch-and-add (RC only).
    CMP_SWAP = "CMP_SWAP"  #: 8-byte atomic compare-and-swap (RC only).

    @property
    def is_one_sided(self) -> bool:
        """Whether the opcode bypasses the remote CPU and recv queue."""
        return self in (
            Opcode.WRITE, Opcode.READ, Opcode.FETCH_ADD, Opcode.CMP_SWAP,
        )

    @property
    def is_atomic(self) -> bool:
        return self in (Opcode.FETCH_ADD, Opcode.CMP_SWAP)

    @property
    def consumes_remote_recv_wqe(self) -> bool:
        """SEND consumes a pre-posted receive WQE on the responder."""
        return self is Opcode.SEND


#: Opcodes each transport type supports (verbs spec).
SUPPORTED_OPCODES = {
    QPType.RC: (
        Opcode.SEND, Opcode.WRITE, Opcode.READ,
        Opcode.FETCH_ADD, Opcode.CMP_SWAP,
    ),
    QPType.UC: (Opcode.SEND, Opcode.WRITE),
    QPType.UD: (Opcode.SEND,),
}

#: Atomic operands are always exactly 8 bytes (verbs spec).
ATOMIC_BYTES = 8


class QPState(enum.Enum):
    """Queue-pair state machine (verbs spec §10.3)."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  #: Ready To Receive.
    RTS = "RTS"  #: Ready To Send.
    SQD = "SQD"  #: Send Queue Drained.
    SQE = "SQE"  #: Send Queue Error (UC/UD only).
    ERR = "ERR"


#: Legal modify_qp transitions.  A transition not listed raises
#: :class:`repro.verbs.exceptions.InvalidStateError`.  Any state may move
#: to ERR or RESET, encoded separately in ``QueuePair.modify``.
QP_TRANSITIONS = {
    QPState.RESET: (QPState.INIT,),
    QPState.INIT: (QPState.INIT, QPState.RTR),
    QPState.RTR: (QPState.RTS, QPState.SQD),
    QPState.RTS: (QPState.RTS, QPState.SQD),
    QPState.SQD: (QPState.RTS,),
    QPState.SQE: (QPState.RTS,),
    QPState.ERR: (),
}


class AccessFlags(enum.IntFlag):
    """Memory-region access permissions (``IBV_ACCESS_*``)."""

    NONE = 0
    LOCAL_WRITE = 1
    REMOTE_WRITE = 2
    REMOTE_READ = 4
    REMOTE_ATOMIC = 8

    @classmethod
    def all_remote(cls) -> "AccessFlags":
        """Convenience union granting every remote right."""
        return (
            cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ
            | cls.REMOTE_ATOMIC
        )


class SendFlags(enum.IntFlag):
    """Per-work-request send flags (``IBV_SEND_*``)."""

    NONE = 0
    SIGNALED = 1
    FENCE = 2
    INLINE = 4


class WCStatus(enum.Enum):
    """Work-completion status codes."""

    SUCCESS = "SUCCESS"
    LOC_LEN_ERR = "LOC_LEN_ERR"
    LOC_PROT_ERR = "LOC_PROT_ERR"
    REM_ACCESS_ERR = "REM_ACCESS_ERR"
    REM_INV_REQ_ERR = "REM_INV_REQ_ERR"
    RNR_RETRY_EXC_ERR = "RNR_RETRY_EXC_ERR"
    WR_FLUSH_ERR = "WR_FLUSH_ERR"


class WCOpcode(enum.Enum):
    """Work-completion opcode, mirroring the originating operation."""

    SEND = "SEND"
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_READ = "RDMA_READ"
    RECV = "RECV"
    FETCH_ADD = "FETCH_ADD"
    CMP_SWAP = "CMP_SWAP"


class MTU(enum.IntEnum):
    """Path MTU values the verbs API accepts (``IBV_MTU_*``).

    RoCEv2 payload MTUs; the paper's anomalies are often MTU-sensitive
    (e.g. #3 and #14 disagree on whether a small or large MTU is safe).
    """

    MTU_256 = 256
    MTU_512 = 512
    MTU_1024 = 1024
    MTU_2048 = 2048
    MTU_4096 = 4096

    @classmethod
    def from_bytes(cls, value: int) -> "MTU":
        """Return the MTU enum for an exact byte value.

        Raises ``ValueError`` for non-standard sizes so configuration typos
        fail loudly rather than silently rounding.
        """
        for mtu in cls:
            if int(mtu) == value:
                return mtu
        raise ValueError(f"{value} is not a valid RDMA path MTU")


#: Bytes of Global Routing Header prepended to every UD message delivered
#: into a receive buffer (verbs spec: UD recv buffers need 40 extra bytes).
GRH_BYTES = 40

#: RoCEv2 per-packet header overhead on the wire: Ethernet (14) + IPv4 (20)
#: + UDP (8) + BTH (12) + iCRC (4) + FCS (4) + preamble/IPG (20).
ROCE_HEADER_BYTES = 82

#: Bytes of an ACK packet on the wire for reliable transports.
ACK_WIRE_BYTES = ROCE_HEADER_BYTES + 4
