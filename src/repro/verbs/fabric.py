"""The in-process fabric connecting verbs contexts in functional mode.

The fabric plays the role of the two-server-plus-switch testbed for byte
movement: it knows which contexts exist, connects QPs, and routes UD
datagrams by destination QP number.  It moves bytes synchronously and
losslessly — network behaviour (rates, pauses) is the job of
:mod:`repro.hardware`, not this layer (the paper likewise assumes a
congestion-free switch, §4).
"""

from __future__ import annotations

from typing import Optional

from repro.verbs.constants import MTU, QPState, QPType
from repro.verbs.device import Context
from repro.verbs.exceptions import AddressHandleError, InvalidStateError
from repro.verbs.qp import QPAttributes, QueuePair


class Fabric:
    """Connects contexts and resolves destination QPs."""

    def __init__(self) -> None:
        self._contexts: list[Context] = []

    def attach(self, context: Context) -> None:
        """Register a context (one per host in the two-server setup)."""
        if context not in self._contexts:
            self._contexts.append(context)

    def resolve(self, qp_num: int) -> Optional[QueuePair]:
        """Find a QP anywhere on the fabric by number."""
        for context in self._contexts:
            qp = context.lookup_qp(qp_num)
            if qp is not None:
                return qp
        return None

    def connect(
        self,
        initiator: QueuePair,
        responder: QueuePair,
        path_mtu: MTU = MTU.MTU_1024,
    ) -> None:
        """Bring an RC/UC pair to RTS/RTS, exchanging QP numbers.

        Mirrors the paper's out-of-band TCP bootstrap (§6): both sides walk
        INIT → RTR → RTS with each other's QP number and an agreed MTU.
        """
        if initiator.qp_type is not responder.qp_type:
            raise InvalidStateError(
                f"cannot connect {initiator.qp_type.value} to "
                f"{responder.qp_type.value}"
            )
        if initiator.qp_type is QPType.UD:
            raise InvalidStateError(
                "UD QPs are connectionless; use activate_ud() instead"
            )
        for local, remote in ((initiator, responder), (responder, initiator)):
            local.modify(QPAttributes(state=QPState.INIT))
            local.modify(
                QPAttributes(
                    state=QPState.RTR,
                    path_mtu=path_mtu,
                    dest_qp_num=remote.qp_num,
                )
            )
            local.modify(QPAttributes(state=QPState.RTS))

    def activate_ud(self, qp: QueuePair, path_mtu: MTU = MTU.MTU_1024) -> None:
        """Bring a UD QP to RTS; peers are addressed per-work-request."""
        if qp.qp_type is not QPType.UD:
            raise InvalidStateError(f"{qp.qp_type.value} QP is not UD")
        qp.modify(QPAttributes(state=QPState.INIT))
        qp.modify(QPAttributes(state=QPState.RTR, path_mtu=path_mtu))
        qp.modify(QPAttributes(state=QPState.RTS))

    def destination_of(self, qp: QueuePair, ah: Optional[int]) -> QueuePair:
        """Resolve the responder QP for a send work request."""
        if qp.qp_type is QPType.UD:
            if ah is None:
                raise AddressHandleError("UD work request lacks address handle")
            dest = self.resolve(ah)
            if dest is None:
                raise AddressHandleError(f"no QP {ah} on fabric")
            return dest
        if qp.dest_qp_num is None:
            raise InvalidStateError(f"QP {qp.qp_num} is not connected")
        dest = self.resolve(qp.dest_qp_num)
        if dest is None:
            raise InvalidStateError(
                f"QP {qp.qp_num} is connected to missing QP {qp.dest_qp_num}"
            )
        return dest
