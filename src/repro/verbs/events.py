"""Completion channels: event-driven completion notification.

Real applications rarely spin-poll their CQs; they arm a completion
channel (``ibv_create_comp_channel`` + ``ibv_req_notify_cq``) and sleep
until the NIC signals the next CQE.  The simulation's equivalent: a
:class:`CompletionChannel` collects notifications from armed CQs; a CQ
fires at most one notification per arming (the verbs one-shot contract),
and the classic "arm → poll leftovers → re-arm" race-avoidance dance is
testable against it.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.verbs.cq import CompletionQueue, WorkCompletion
from repro.verbs.exceptions import VerbsError


class NotifiableCompletionQueue(CompletionQueue):
    """A CQ that can be armed to notify a completion channel once."""

    def __init__(self, cqe: int, handle: int = 0, channel=None) -> None:
        super().__init__(cqe, handle)
        self.channel: Optional[CompletionChannel] = channel
        self._armed = False

    def req_notify(self) -> None:
        """``ibv_req_notify_cq``: arm a single notification."""
        if self.channel is None:
            raise VerbsError(
                f"CQ {self.handle} has no completion channel to notify"
            )
        self._armed = True

    @property
    def armed(self) -> bool:
        return self._armed

    def push(self, completion: WorkCompletion) -> None:
        super().push(completion)
        if self._armed and self.channel is not None:
            self._armed = False  # one-shot: consumer must re-arm
            self.channel._deliver(self)


class CompletionChannel:
    """``struct ibv_comp_channel``: a queue of CQ notifications."""

    def __init__(self) -> None:
        self._pending: collections.deque = collections.deque()
        self.notifications = 0

    def _deliver(self, cq: NotifiableCompletionQueue) -> None:
        self._pending.append(cq)
        self.notifications += 1

    def get_event(self) -> Optional[NotifiableCompletionQueue]:
        """``ibv_get_cq_event`` (non-blocking flavour): the next notified
        CQ, or None when no notification is pending."""
        if not self._pending:
            return None
        return self._pending.popleft()

    def __len__(self) -> int:
        return len(self._pending)


def create_notifiable_cq(
    context, cqe: int, channel: CompletionChannel
) -> NotifiableCompletionQueue:
    """``ibv_create_cq`` with a completion channel attached."""
    if cqe > context.device.attributes.max_cqe:
        raise VerbsError(
            f"requested {cqe} CQEs exceeds device max "
            f"{context.device.attributes.max_cqe}"
        )
    cq = NotifiableCompletionQueue(
        cqe, handle=len(context.cqs) + 1, channel=channel
    )
    context.cqs.append(cq)
    return cq
