"""Completion queues and work completions."""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional

from repro.verbs.constants import WCOpcode, WCStatus
from repro.verbs.exceptions import CQOverrunError


@dataclasses.dataclass(frozen=True)
class WorkCompletion:
    """One CQE, mirroring ``struct ibv_wc``."""

    wr_id: int
    status: WCStatus
    opcode: WCOpcode
    byte_len: int
    qp_num: int
    #: Completion latency the datapath attributed to this WR, in µs
    #: since its send queue started draining — includes head-of-line
    #: wait behind earlier WQEs on the same QP.  Deterministic; 0.0 for
    #: completions created outside the datapath.
    latency_us: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionQueue:
    """A bounded ring of work completions (``struct ibv_cq``).

    Overrunning a real CQ puts the associated QPs into error; here an
    overrun raises :class:`CQOverrunError` immediately, which is stricter
    but surfaces the workload bug at the point of the mistake.
    """

    def __init__(self, cqe: int, handle: int = 0) -> None:
        if cqe <= 0:
            raise ValueError(f"CQ depth must be positive, got {cqe}")
        self.capacity = cqe
        self.handle = handle
        self._ring: collections.deque[WorkCompletion] = collections.deque()
        #: Total completions ever pushed, for monitoring.
        self.total_completions = 0

    def __len__(self) -> int:
        return len(self._ring)

    def push(self, completion: WorkCompletion) -> None:
        """Deliver a completion; raises on overrun."""
        if len(self._ring) >= self.capacity:
            raise CQOverrunError(
                f"CQ {self.handle} overrun: capacity {self.capacity}"
            )
        self._ring.append(completion)
        self.total_completions += 1

    def poll(self, max_entries: int = 16) -> list[WorkCompletion]:
        """Return up to ``max_entries`` completions, oldest first.

        Like ``ibv_poll_cq`` this never blocks; an empty list means the
        queue is currently empty.
        """
        if max_entries <= 0:
            return []
        out = []
        while self._ring and len(out) < max_entries:
            out.append(self._ring.popleft())
        return out

    def poll_one(self) -> Optional[WorkCompletion]:
        """Convenience single-entry poll."""
        polled = self.poll(1)
        return polled[0] if polled else None

    def drain(self) -> list[WorkCompletion]:
        """Poll everything currently queued."""
        out = list(self._ring)
        self._ring.clear()
        return out
