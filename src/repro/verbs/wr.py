"""Work requests and scatter-gather lists.

A work queue element (WQE) is what the RNIC fetches over PCIe to learn what
to transmit; its shape — how many WQEs per doorbell, how many SG entries per
WQE — is a first-class search dimension in Collie (paper §4, Dimension 3,
the :math:`\\sum_i m_i = k` formula).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional, Sequence

from repro.verbs.constants import Opcode, SendFlags
from repro.verbs.exceptions import WorkRequestError

#: Bytes of one WQE segment on the wire between host memory and the RNIC.
#: Mellanox PRM: a send WQE is built from 16-byte control/data segments;
#: each SG entry adds one 16-byte data segment.
WQE_BASE_BYTES = 48
WQE_SEGMENT_BYTES = 16

_wr_ids = itertools.count(1)


def next_wr_id() -> int:
    """Monotonic work-request id generator for callers that don't care."""
    return next(_wr_ids)


@dataclasses.dataclass(frozen=True)
class ScatterGatherEntry:
    """One entry of an SG list: a contiguous slice of a registered MR."""

    addr: int
    length: int
    lkey: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise WorkRequestError(f"SG entry has negative length {self.length}")


@dataclasses.dataclass(frozen=True)
class SendWorkRequest:
    """A send-queue work request (``struct ibv_send_wr``).

    ``remote_addr``/``rkey`` are required for one-sided operations;
    ``ah`` names the destination QP number for UD sends (a simplified
    address handle — the fabric resolves it).  Atomics carry
    ``compare_add`` (the addend, or the compare value for CMP_SWAP) and
    ``swap``; their single SG entry receives the original 8-byte value.
    ``inline_payload`` carries the bytes of an ``IBV_SEND_INLINE``
    request, captured at post time so no lkey is consulted.
    """

    opcode: Opcode
    sg_list: tuple[ScatterGatherEntry, ...]
    wr_id: int = dataclasses.field(default_factory=next_wr_id)
    remote_addr: Optional[int] = None
    rkey: Optional[int] = None
    send_flags: SendFlags = SendFlags.SIGNALED
    ah: Optional[int] = None
    compare_add: int = 0
    swap: int = 0
    inline_payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        from repro.verbs.constants import ATOMIC_BYTES

        object.__setattr__(self, "sg_list", tuple(self.sg_list))
        if self.opcode.is_one_sided and (
            self.remote_addr is None or self.rkey is None
        ):
            raise WorkRequestError(
                f"{self.opcode.value} work request needs remote_addr and rkey"
            )
        if self.opcode.is_atomic and self.byte_length != ATOMIC_BYTES:
            raise WorkRequestError(
                f"atomic operations carry exactly {ATOMIC_BYTES} bytes, "
                f"got an SG list of {self.byte_length}"
            )
        if self.inline_payload is not None and not (
            self.send_flags & SendFlags.INLINE
        ):
            raise WorkRequestError(
                "inline_payload requires the INLINE send flag"
            )
        if (self.send_flags & SendFlags.INLINE) and self.opcode.is_atomic:
            raise WorkRequestError("atomic operations cannot be inline")

    @property
    def byte_length(self) -> int:
        """Total message payload described by the SG list."""
        if self.inline_payload is not None:
            return len(self.inline_payload)
        return sum(entry.length for entry in self.sg_list)

    @property
    def wqe_bytes(self) -> int:
        """PCIe bytes the RNIC fetches for this WQE (control + SG segments)."""
        return WQE_BASE_BYTES + WQE_SEGMENT_BYTES * len(self.sg_list)

    @property
    def signaled(self) -> bool:
        return bool(self.send_flags & SendFlags.SIGNALED)


@dataclasses.dataclass(frozen=True)
class RecvWorkRequest:
    """A receive-queue work request (``struct ibv_recv_wr``)."""

    sg_list: tuple[ScatterGatherEntry, ...]
    wr_id: int = dataclasses.field(default_factory=next_wr_id)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sg_list", tuple(self.sg_list))

    @property
    def byte_length(self) -> int:
        return sum(entry.length for entry in self.sg_list)

    @property
    def wqe_bytes(self) -> int:
        """PCIe bytes to fetch this receive WQE (drives the RX WQE cache)."""
        return WQE_BASE_BYTES + WQE_SEGMENT_BYTES * len(self.sg_list)


def chunk_message(
    total_bytes: int, wqe_count: int, sge_per_wqe: int
) -> list[list[int]]:
    """Split ``total_bytes`` across ``wqe_count`` WQEs of ``sge_per_wqe`` SGEs.

    Implements the paper's batching parameterisation
    :math:`\\sum_{i=1}^{n} m_i = k`: the caller chooses how a logical message
    of ``k`` bytes is expressed as WQEs and SG entries.  Bytes are spread as
    evenly as possible; the final entry absorbs the remainder.

    Returns a list of per-WQE lists of SG-entry lengths.
    """
    if wqe_count <= 0 or sge_per_wqe <= 0:
        raise WorkRequestError("wqe_count and sge_per_wqe must be positive")
    entries = wqe_count * sge_per_wqe
    base, remainder = divmod(total_bytes, entries)
    lengths = [base + (1 if i < remainder else 0) for i in range(entries)]
    return [
        lengths[i * sge_per_wqe : (i + 1) * sge_per_wqe] for i in range(wqe_count)
    ]


def mixed_entry_lengths(total_bytes: int, sge_count: int) -> list[int]:
    """Split a message into one large SG entry plus small leading entries.

    The metadata-plus-tensor shape: ``sge_count - 1`` small entries (up
    to 1KB each) followed by one large entry carrying the remainder.
    Falls back to an even split when the message is too small to give
    every entry at least one byte this way.
    """
    if sge_count <= 0:
        raise WorkRequestError("sge_count must be positive")
    if sge_count == 1:
        return [total_bytes]
    small = min(1024, max(1, total_bytes // (2 * sge_count)))
    remainder = total_bytes - small * (sge_count - 1)
    if remainder <= 0:
        return chunk_message(total_bytes, 1, sge_count)[0]
    return [small] * (sge_count - 1) + [remainder]


def build_sg_list(
    lengths: Sequence[int], base_addr: int, lkey: int
) -> tuple[ScatterGatherEntry, ...]:
    """Lay consecutive SG entries of the given lengths from ``base_addr``."""
    entries = []
    cursor = base_addr
    for length in lengths:
        entries.append(ScatterGatherEntry(addr=cursor, length=length, lkey=lkey))
        cursor += length
    return tuple(entries)
