"""Live multiplexing of campaign journals into one telemetry view.

A ``campaign``/``parallel``/population run writes one journal (or, for
an operator watching several fleets, many); the exporter and the
``repro top`` dashboard both want a single rollup: how many experiments
and anomalies so far, which workers are alive, what the tail latency
and cache hit rate look like *right now*.  :class:`CampaignAggregator`
owns one :class:`~repro.obs.stream.JournalFollower` per journal and
folds their records incrementally:

* **per-source rollups** fold each record exactly once, maintaining the
  same definitions the post-hoc readers use
  (:func:`~repro.analysis.journaldiff.journal_metrics`,
  :mod:`repro.obs.sadiag`) incrementally — a scrape costs O(records
  since the last scrape), not O(history), and the live numbers agree
  with what ``repro report`` / ``journal diff`` will say once the run
  finishes (pinned by the telemetry test suite);
* **per-worker liveness** folds schema-v7 ``heartbeat`` records: the
  latest heartbeat per (source, worker slot) plus its wall-clock age
  classifies a worker alive or stale;
* **streaming tail latency** merges every ``latency`` record's p99 into
  one :class:`~repro.obs.metrics.HistogramSummary` across sources;
* an **anomaly timeline tail** keeps the most recent anomalous
  experiments for the dashboard.

The aggregator is strictly a *reader*: it never touches the writer's
process, RNG, or journal, so an aggregated run stays bit-identical to
an unobserved one.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import deque
from typing import Optional, Sequence, Union

from repro.analysis.serialize import mfs_from_dict, workload_from_dict
from repro.obs.coverage import CoverageTracker
from repro.obs.metrics import HistogramSummary
from repro.obs.sadiag import (
    DECISION_ACTIONS,
    HEALTHY,
    per_chain_diagnostics,
)
from repro.obs.stream import JournalFollower

#: A worker whose last heartbeat is older than this many wall-clock
#: seconds is reported stale (the default ``repro top`` threshold).
DEFAULT_STALE_AFTER = 30.0

#: Anomalous experiments kept for the dashboard's timeline tail.
TIMELINE_TAIL = 8


@dataclasses.dataclass
class WorkerLiveness:
    """Latest heartbeat of one (source, worker-slot) pair."""

    source: str
    worker: int
    done: int
    total: int
    wall_time: float

    def age_seconds(self, now: float) -> float:
        return max(0.0, now - self.wall_time)

    def alive(self, now: float, stale_after: float) -> bool:
        return self.age_seconds(now) <= stale_after


class _SourceState:
    """One journal's incremental fold.

    Every record is folded exactly once, on arrival, into running
    counts, the first-anomaly time, per-run coverage trackers (demuxed
    by chain stamp, mirroring
    :func:`~repro.obs.coverage.coverage_from_records`), the Metropolis
    acceptance tallies and the latency-p99 population — so a scrape
    pays for the records since the last scrape, not for the whole
    history again.  Agreement with the post-hoc
    :func:`~repro.analysis.journaldiff.journal_metrics` is pinned by
    ``tests/obs/test_telemetry.py``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.follower = JournalFollower(path)
        self.records: list[dict] = []
        self.error: Optional[str] = None
        self._by_type: dict[str, int] = {}
        self._complete_runs = 0
        self._in_run: dict = {}
        self._ttfa: Optional[float] = None
        self._accepted = 0
        self._decided = 0
        #: Every run's tracker (kept) + the live one per chain stream.
        self._trackers: list[CoverageTracker] = []
        self._current_tracker: dict = {}
        self._p99s: list[float] = []
        self._median: Optional[float] = None
        self._median_dirty = False

    def absorb(self) -> list[dict]:
        """Poll the follower; returns the fresh records (maybe none)."""
        try:
            fresh = self.follower.poll()
        except ValueError as error:  # mid-file corruption
            self.error = str(error)
            return []
        for record in fresh:
            self.records.append(record)
            self._fold_metrics(record)
        return fresh

    def _fold_metrics(self, record: dict) -> None:
        kind = record.get("t", "?")
        self._by_type[kind] = self._by_type.get(kind, 0) + 1
        chain = record.get("chain")
        if kind == "run_start":
            self._in_run[chain] = True
            tracker = CoverageTracker.for_subsystem(record["subsystem"])
            self._current_tracker[chain] = tracker
            self._trackers.append(tracker)
        elif kind == "run_end":
            if self._in_run.get(chain):
                self._complete_runs += 1
                self._in_run[chain] = False
        elif kind == "experiment":
            if (
                self._ttfa is None
                and record.get("symptom", HEALTHY) != HEALTHY
            ):
                self._ttfa = float(record["time_seconds"])
            tracker = self._current_tracker.get(chain)
            if tracker is not None:
                tracker.visit(workload_from_dict(record["workload"]))
        elif kind == "skip":
            tracker = self._current_tracker.get(chain)
            if tracker is not None:
                workload = record.get("workload")
                tracker.skip(
                    workload_from_dict(workload)
                    if workload is not None else None
                )
        elif kind == "anomaly":
            tracker = self._current_tracker.get(chain)
            if tracker is not None:
                tracker.mark_mfs(mfs_from_dict(record["mfs"]))
        elif kind == "transition":
            if record.get("action") in DECISION_ACTIONS:
                self._decided += 1
                if record["action"] != "reject":
                    self._accepted += 1
        elif kind == "latency":
            self._p99s.append(float(record["p99_us"]))
            self._median_dirty = True

    # -- derived rollups (cheap: no pass over the history) ------------------

    def count(self, kind: str) -> int:
        return self._by_type.get(kind, 0)

    def time_to_first_anomaly(self) -> Optional[float]:
        return self._ttfa

    def coverage_fraction(self) -> Optional[float]:
        if not self._trackers:
            return None
        return sum(
            tracker.touched_fraction() for tracker in self._trackers
        ) / len(self._trackers)

    def acceptance_rate(self) -> Optional[float]:
        return self._accepted / self._decided if self._decided else None

    def latency_p99_median(self) -> Optional[float]:
        if self._median_dirty:
            ordered = sorted(self._p99s)
            mid = len(ordered) // 2
            self._median = (
                ordered[mid] if len(ordered) % 2
                else (ordered[mid - 1] + ordered[mid]) / 2.0
            )
            self._median_dirty = False
        return self._median

    @property
    def complete_runs(self) -> int:
        return self._complete_runs


class CampaignAggregator:
    """Fold one or more live journals into a single telemetry snapshot."""

    def __init__(
        self,
        paths: Sequence[Union[str, os.PathLike]],
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        self.sources = [_SourceState(os.fspath(p)) for p in paths]
        self.stale_after = stale_after
        #: (source path, worker slot) → latest heartbeat.
        self.workers: dict[tuple, WorkerLiveness] = {}
        #: Most recent anomalous experiments, oldest first.
        self.timeline: deque = deque(maxlen=TIMELINE_TAIL)
        #: p99 of every latency record seen, merged across sources.
        self.latency_p99 = HistogramSummary()
        self._cache_hits = 0
        self._cache_lookups = 0

    # -- ingest -------------------------------------------------------------

    def refresh(self) -> int:
        """Poll every source; returns how many new records arrived."""
        fresh_total = 0
        for source in self.sources:
            for record in source.absorb():
                self._fold(source.path, record)
                fresh_total += 1
        return fresh_total

    def _fold(self, path: str, record: dict) -> None:
        kind = record.get("t")
        if kind == "heartbeat":
            beat = WorkerLiveness(
                source=path,
                worker=int(record["worker"]),
                done=int(record["done"]),
                total=int(record["total"]),
                wall_time=float(record["wall_time"]),
            )
            self.workers[(path, beat.worker)] = beat
        elif kind == "experiment":
            if record.get("symptom", HEALTHY) != HEALTHY:
                self.timeline.append({
                    "source": path,
                    "chain": record.get("chain"),
                    "time_seconds": record["time_seconds"],
                    "symptom": record["symptom"],
                    "counter": record.get("counter", "?"),
                    "counter_value": record.get("counter_value", 0.0),
                })
        elif kind == "latency":
            self.latency_p99.observe(float(record["p99_us"]))
        elif kind == "cache":
            self._cache_lookups += 1
            if record.get("hit"):
                self._cache_hits += 1

    # -- read side ----------------------------------------------------------

    @property
    def records_seen(self) -> int:
        return sum(len(source.records) for source in self.sources)

    def cache_hit_rate(self) -> Optional[float]:
        if not self._cache_lookups:
            return None
        return self._cache_hits / self._cache_lookups

    def snapshot(self, now: Optional[float] = None) -> dict:
        """The whole telemetry view as one JSON-able dict.

        ``now`` (wall clock) anchors heartbeat ages; injectable so the
        liveness classification is testable without sleeping.
        """
        now = time.time() if now is None else now
        sources = []
        totals = {
            "experiments": 0, "anomalies": 0, "skips": 0,
            "runs": 0, "complete_runs": 0, "records": 0,
        }
        ttfas: list[float] = []
        coverages: list[float] = []
        for source in self.sources:
            entry = {
                "path": source.path,
                "records": len(source.records),
                "error": source.error,
                "runs": source.count("run_start"),
                "complete_runs": source.complete_runs,
                "experiments": source.count("experiment"),
                "anomalies": source.count("anomaly"),
                "skips": source.count("skip"),
                "time_to_first_anomaly_seconds":
                    source.time_to_first_anomaly(),
                "coverage_fraction": source.coverage_fraction(),
                "acceptance_rate": source.acceptance_rate(),
                "latency_p99_us_median": source.latency_p99_median(),
            }
            sources.append(entry)
            for key in ("experiments", "anomalies", "skips", "runs",
                        "complete_runs"):
                totals[key] += entry[key]
            totals["records"] += len(source.records)
            ttfa = entry["time_to_first_anomaly_seconds"]
            if ttfa is not None:
                ttfas.append(float(ttfa))
            if entry["coverage_fraction"] is not None:
                coverages.append(float(entry["coverage_fraction"]))
        workers = [
            {
                "source": beat.source,
                "worker": beat.worker,
                "done": beat.done,
                "total": beat.total,
                "wall_time": beat.wall_time,
                "age_seconds": beat.age_seconds(now),
                "alive": beat.alive(now, self.stale_after),
            }
            for (_, _), beat in sorted(self.workers.items())
        ]
        totals.update({
            "time_to_first_anomaly_seconds": min(ttfas) if ttfas else None,
            "coverage_fraction": max(coverages) if coverages else None,
            "cache_hit_rate": self.cache_hit_rate(),
            "latency_p99_us": (
                self.latency_p99.percentile(0.99)
                if self.latency_p99.count else None
            ),
            "latency_records": self.latency_p99.count,
            "workers_alive": sum(1 for w in workers if w["alive"]),
            "workers_total": len(workers),
        })
        return {
            "sources": sources,
            "totals": totals,
            "workers": workers,
            "timeline": list(self.timeline),
            "stale_after": self.stale_after,
        }

    def chain_diagnostics(self) -> list:
        """Per-chain SA rows across every source (``repro top``)."""
        rows = []
        for source in self.sources:
            for diag in per_chain_diagnostics(source.records):
                rows.append((source.path, diag))
        return rows

    def first_anomaly_seconds(self) -> Optional[float]:
        """Earliest TTFA across sources (None while all healthy)."""
        values = [
            ttfa for source in self.sources
            if (ttfa := source.time_to_first_anomaly()) is not None
        ]
        return min(values) if values else None
