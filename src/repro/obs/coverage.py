"""Workload-space coverage maps over the paper's 4-D search space.

A :class:`CoverageTracker` folds the stream of visited workload points
into per-dimension occupancy histograms, grouped by the paper's four
dimensions (host topology, memory, transport, message pattern; §4).
It also tracks which buckets MFS-driven skipping pruned and which
buckets extracted MFSes admit, answering the two questions a search
journal alone cannot: *how much of the space did this run actually
touch*, and *how much did MFS pruning spare it*.

Like the recorder, the tracker only observes — it consumes no RNG
draws and never advances the simulated clock, so a coverage-tracked
search is bit-identical to an untracked one.

Live tracking attaches via ``FlightRecorder(track_coverage=True)``;
:func:`coverage_from_records` recomputes the same maps post-hoc from
any journal's ``experiment``/``skip``/``anomaly`` records (v1 journals
included — their skip records just lack the workload detail).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.serialize import mfs_from_dict, workload_from_dict
from repro.core.mfs import MinimalFeatureSet
from repro.core.space import DIMENSION_GROUPS, SearchSpace
from repro.hardware.workload import WorkloadDescriptor


class CoverageTracker:
    """Per-dimension histograms of visited / skipped / MFS-admitted buckets."""

    def __init__(self, space: SearchSpace):
        self.space = space
        self.dimensions = space.coverage_dimensions()
        #: dimension -> ordered bucket labels (str of the bucket value).
        self.buckets = {
            dimension: tuple(str(v) for v in space.dimension_buckets(dimension))
            for dimension in self.dimensions
        }
        self.visited: dict[str, dict[str, int]] = {
            dimension: {} for dimension in self.dimensions
        }
        self.skipped: dict[str, dict[str, int]] = {
            dimension: {} for dimension in self.dimensions
        }
        self.mfs_admitted: dict[str, set[str]] = {
            dimension: set() for dimension in self.dimensions
        }
        self.experiments = 0
        self.skips = 0
        self._points: set[WorkloadDescriptor] = set()

    @classmethod
    def for_subsystem(cls, name: str) -> "CoverageTracker":
        """Tracker over a subsystem's space (generic space as fallback)."""
        try:
            space = SearchSpace.for_subsystem(name)
        except KeyError:
            space = SearchSpace()
        return cls(space)

    # -- ingestion ----------------------------------------------------------

    def visit(self, workload: WorkloadDescriptor) -> None:
        """Count one measured experiment's point."""
        self.experiments += 1
        self._points.add(workload)
        for dimension, value in self.space.point_buckets(workload).items():
            label = str(value)
            histogram = self.visited[dimension]
            histogram[label] = histogram.get(label, 0) + 1

    def skip(self, workload: Optional[WorkloadDescriptor] = None) -> None:
        """Count one MFS-matched skip (with bucket detail when known)."""
        self.skips += 1
        if workload is None:
            return
        for dimension, value in self.space.point_buckets(workload).items():
            label = str(value)
            histogram = self.skipped[dimension]
            histogram[label] = histogram.get(label, 0) + 1

    def mark_mfs(self, mfs: MinimalFeatureSet) -> None:
        """Mark every bucket an extracted MFS admits (per-dimension)."""
        for dimension in self.dimensions:
            admitted = self.mfs_admitted[dimension]
            for value in self.space.dimension_buckets(dimension):
                if mfs.admits_value(dimension, value):
                    admitted.add(str(value))

    # -- summaries ----------------------------------------------------------

    @property
    def unique_points(self) -> int:
        return len(self._points)

    def dimension_summary(self, dimension: str) -> dict:
        labels = self.buckets[dimension]
        visited = self.visited[dimension]
        skipped = self.skipped[dimension]
        admitted = self.mfs_admitted[dimension]
        touched = sum(1 for label in labels if visited.get(label))
        return {
            "buckets": len(labels),
            "visited_buckets": touched,
            "fraction": touched / len(labels) if labels else 0.0,
            "mfs_fraction": (
                len(admitted & set(labels)) / len(labels) if labels else 0.0
            ),
            "visits": {
                label: visited[label] for label in labels
                if visited.get(label)
            },
            "skips": {
                label: skipped[label] for label in labels
                if skipped.get(label)
            },
        }

    def summary(self) -> dict:
        """Everything the coverage journal record and renderer need."""
        return {
            "experiments": self.experiments,
            "skips": self.skips,
            "unique_points": self.unique_points,
            "fraction": self.touched_fraction(),
            "dimensions": {
                dimension: self.dimension_summary(dimension)
                for dimension in self.dimensions
            },
        }

    def touched_fraction(self) -> float:
        """Mean per-dimension fraction of buckets visited."""
        fractions = [
            self.dimension_summary(dimension)["fraction"]
            for dimension in self.dimensions
        ]
        return sum(fractions) / len(fractions) if fractions else 0.0

    def as_record(self, time_seconds: float) -> dict:
        """Schema-v3 ``coverage`` journal record."""
        return {
            "t": "coverage",
            "time_seconds": float(time_seconds),
            "experiments": self.experiments,
            "skips": self.skips,
            "unique_points": self.unique_points,
            "dimensions": {
                dimension: self.dimension_summary(dimension)
                for dimension in self.dimensions
            },
        }

    def render(self) -> str:
        """Per-group occupancy tables plus the touched-vs-skipped summary."""
        lines = ["workload-space coverage"]
        for group, dimensions in DIMENSION_GROUPS.items():
            lines.append(f"  {group}:")
            for dimension in dimensions:
                summary = self.dimension_summary(dimension)
                lines.append(
                    f"    {dimension:<12} {summary['visited_buckets']:>3}/"
                    f"{summary['buckets']:<3} buckets "
                    f"({summary['fraction']:>5.0%} visited, "
                    f"{summary['mfs_fraction']:>5.0%} inside an MFS)"
                )
                for label in self.buckets[dimension]:
                    visits = summary["visits"].get(label, 0)
                    skips = summary["skips"].get(label, 0)
                    if not visits and not skips:
                        continue
                    bar = "#" * min(visits, 40)
                    skipped = f"  (skipped {skips})" if skips else ""
                    lines.append(
                        f"      {label:>10} {visits:>6} {bar}{skipped}"
                    )
        lines.append(
            f"  touched {self.touched_fraction():.0%} of the space "
            f"(mean per-dimension), {self.unique_points} unique points, "
            f"{self.skips} MFS-skipped candidates"
        )
        return "\n".join(lines)


#: Order-of-magnitude buckets of the latency panel's p99 histogram.
_LATENCY_BUCKETS = (
    ("<10us", 10.0),
    ("10-100us", 100.0),
    ("100us-1ms", 1000.0),
    ("1-10ms", 10000.0),
    (">=10ms", float("inf")),
)


def render_latency_panel(records) -> Optional[str]:
    """Distribution of modeled per-WR p99 over a journal's latency records.

    Pure read-side fold over schema-v4 ``latency`` records — journals
    written before the latency signal (or with it disabled) have none,
    and the panel returns ``None`` instead of an empty chart.
    """
    latencies = [r for r in records if r.get("t") == "latency"]
    if not latencies:
        return None
    p99s = sorted(float(r["p99_us"]) for r in latencies)
    counts = {label: 0 for label, _ in _LATENCY_BUCKETS}
    for p99 in p99s:
        for label, upper in _LATENCY_BUCKETS:
            if p99 < upper:
                counts[label] += 1
                break
    peak = max(counts.values())
    lines = [f"per-WR p99 latency ({len(p99s)} latency records)"]
    for label, _ in _LATENCY_BUCKETS:
        count = counts[label]
        if not count:
            continue
        bar = "#" * max(1, round(count * 40 / peak))
        lines.append(f"  {label:>10} {count:>6} {bar}")
    median = p99s[len(p99s) // 2]
    worst = max(float(r["inflation"]) for r in latencies)
    quirky = sum(1 for r in latencies if r.get("tags"))
    lines.append(
        f"  median p99 {median:.1f} us, worst inflation {worst:.2f}x, "
        f"{quirky} experiment(s) with a fired latency quirk"
    )
    return "\n".join(lines)


def coverage_from_records(records) -> list[CoverageTracker]:
    """Recompute coverage post-hoc: one tracker per run in a journal.

    Runs are grouped by :func:`~repro.obs.journal.run_records`, which
    demultiplexes chain-stamped population journals — each chain gets
    its own tracker instead of attributing its visits to whichever run
    started last in file order.
    """
    from repro.obs.journal import run_records

    trackers: list[CoverageTracker] = []
    for run in run_records(records):
        current = CoverageTracker.for_subsystem(run[0]["subsystem"])
        trackers.append(current)
        for record in run[1:]:
            kind = record.get("t")
            if kind == "experiment":
                current.visit(workload_from_dict(record["workload"]))
            elif kind == "skip":
                workload = record.get("workload")
                current.skip(
                    workload_from_dict(workload)
                    if workload is not None else None
                )
            elif kind == "anomaly":
                current.mark_mfs(mfs_from_dict(record["mfs"]))
    return trackers
