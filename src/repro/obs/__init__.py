"""Observability: the flight recorder for search campaigns.

Collie's value is *explaining* why a subsystem misbehaves; this package
makes the search itself explainable while in flight:

* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  plus a span/timer API, instrumenting the SA loop, the anomaly
  monitor, MFS probing, the evaluation cache and the campaign executor;
* :mod:`repro.obs.journal` — a versioned, structured JSONL run journal
  from which a :class:`~repro.core.collie.SearchReport` (and the
  Figure 4–6 inputs) can be re-rendered bit-identically;
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` façade the
  hot paths call into (a ``None`` recorder costs one identity check);
* :mod:`repro.obs.logging` — the CLI-side ``logging`` setup helper
  (library code never configures the root logger).

The *search observatory* builds the read side on top of the journal:

* :mod:`repro.obs.coverage` — 4-D workload-space occupancy maps
  (visited vs MFS-skipped buckets per dimension);
* :mod:`repro.obs.sadiag` — SA diagnostics: per-temperature-epoch
  acceptance rates, per-dimension mutation effectiveness,
  time-to-first-anomaly, per-chain splits for population journals;
* :mod:`repro.obs.profiler` — hierarchical wall-clock span profiler
  with Chrome trace-event export and a terminal self-time table.

The *telemetry plane* streams the journal while it is still being
written (the substrate for the ``repro serve`` campaign daemon):

* :mod:`repro.obs.stream` — incremental journal tail-following with
  torn-tail semantics and resume-from-offset;
* :mod:`repro.obs.aggregate` — live multiplexing of per-worker /
  per-chain journals into one rollup (heartbeat liveness, TTFA,
  coverage, cache hit rate, streaming latency p99);
* :mod:`repro.obs.export` — Prometheus text exposition of any metrics
  registry plus aggregator rollups, served by a stdlib ``http.server``
  thread (``/metrics`` + ``/status``, the ``--export-metrics`` flag);
* :mod:`repro.obs.dashboard` — the plain-ANSI ``repro top`` renderer.

Everything is off by default and adds no work to a run that does not
request it.
"""

from repro.obs.aggregate import (
    CampaignAggregator,
    WorkerLiveness,
)
from repro.obs.coverage import (
    CoverageTracker,
    coverage_from_records,
    render_latency_panel,
)
from repro.obs.dashboard import load_baseline_metrics, render_dashboard
from repro.obs.export import TelemetryServer, render_prometheus
from repro.obs.journal import (
    VERIFY_CORRUPT,
    VERIFY_INCOMPLETE,
    VERIFY_OK,
    RunJournal,
    journal_summary,
    open_journal_text,
    read_journal,
    read_journal_prefix,
    reports_from_journal,
    reports_from_records,
    run_records,
    verify_journal,
)
from repro.obs.logging import setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import JournalFollower, follow_journal
from repro.obs.profiler import (
    SpanProfiler,
    chrome_trace,
    events_from_records,
    render_span_table,
    validate_chrome_trace,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.sadiag import (
    ChainDiagnostics,
    acceptance_rate,
    fold_epochs,
    mutation_effectiveness,
    per_chain_diagnostics,
    render_sa_diagnostics,
    split_by_chain,
    time_to_first_anomaly,
    time_to_first_anomaly_by_symptom,
    worst_interference,
)
from repro.obs.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    validate_journal,
    validate_record,
)

__all__ = [
    "CampaignAggregator",
    "ChainDiagnostics",
    "CoverageTracker",
    "FlightRecorder",
    "JournalFollower",
    "MetricsRegistry",
    "RunJournal",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "SpanProfiler",
    "TelemetryServer",
    "VERIFY_CORRUPT",
    "VERIFY_INCOMPLETE",
    "VERIFY_OK",
    "WorkerLiveness",
    "acceptance_rate",
    "chrome_trace",
    "coverage_from_records",
    "events_from_records",
    "fold_epochs",
    "follow_journal",
    "journal_summary",
    "load_baseline_metrics",
    "mutation_effectiveness",
    "open_journal_text",
    "per_chain_diagnostics",
    "read_journal",
    "read_journal_prefix",
    "render_dashboard",
    "render_prometheus",
    "render_latency_panel",
    "render_sa_diagnostics",
    "render_span_table",
    "reports_from_journal",
    "reports_from_records",
    "run_records",
    "setup_logging",
    "split_by_chain",
    "time_to_first_anomaly",
    "time_to_first_anomaly_by_symptom",
    "worst_interference",
    "validate_chrome_trace",
    "validate_journal",
    "validate_record",
    "verify_journal",
]
