"""Observability: the flight recorder for search campaigns.

Collie's value is *explaining* why a subsystem misbehaves; this package
makes the search itself explainable while in flight:

* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  plus a span/timer API, instrumenting the SA loop, the anomaly
  monitor, MFS probing, the evaluation cache and the campaign executor;
* :mod:`repro.obs.journal` — a versioned, structured JSONL run journal
  from which a :class:`~repro.core.collie.SearchReport` (and the
  Figure 4–6 inputs) can be re-rendered bit-identically;
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` façade the
  hot paths call into (a ``None`` recorder costs one identity check);
* :mod:`repro.obs.logging` — the CLI-side ``logging`` setup helper
  (library code never configures the root logger).

Everything is off by default and adds no work to a run that does not
request it.
"""

from repro.obs.journal import (
    VERIFY_CORRUPT,
    VERIFY_INCOMPLETE,
    VERIFY_OK,
    RunJournal,
    journal_summary,
    read_journal,
    read_journal_prefix,
    reports_from_journal,
    reports_from_records,
    verify_journal,
)
from repro.obs.logging import setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    validate_journal,
    validate_record,
)

__all__ = [
    "FlightRecorder",
    "MetricsRegistry",
    "RunJournal",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "VERIFY_CORRUPT",
    "VERIFY_INCOMPLETE",
    "VERIFY_OK",
    "journal_summary",
    "read_journal",
    "read_journal_prefix",
    "reports_from_journal",
    "reports_from_records",
    "setup_logging",
    "validate_journal",
    "validate_record",
    "verify_journal",
]
