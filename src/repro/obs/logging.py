"""CLI-side logging setup (library code never configures logging).

One helper, :func:`setup_logging`, installs exactly two handlers on the
root logger:

* records below WARNING go to **stdout** — the CLI's normal output
  channel, so ``repro search ... | tee`` keeps working;
* WARNING and above go to **stderr** — where operators and tests look
  for problems.

The handlers are tagged and torn down on every call, which makes the
helper idempotent (repeated ``main()`` invocations in one process,
as the test suite does, never stack handlers) and re-binds the current
``sys.stdout``/``sys.stderr`` (pytest's capsys swaps them per test).

``json_format=True`` renders each record as one JSON object per line —
the structured-logging counterpart of the run journal, for shipping
CLI output into log pipelines.
"""

from __future__ import annotations

import json
import logging
import sys

#: Attribute tagging the handlers this module owns.
_HANDLER_TAG = "_repro_obs_handler"

LEVELS = ("debug", "info", "warning", "error", "critical")


class _MaxLevelFilter(logging.Filter):
    """Pass only records strictly below a level (stdout's half)."""

    def __init__(self, below: int) -> None:
        super().__init__()
        self.below = below

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < self.below


class JsonFormatter(logging.Formatter):
    """One JSON object per record: level, logger name, message."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def setup_logging(
    level: str = "info", json_format: bool = False
) -> logging.Logger:
    """Install the CLI's stdout/stderr split handlers on the root logger.

    Returns the root logger.  Raises ``ValueError`` on an unknown level
    name (the CLI maps this to an argparse choice, so users never see
    it).
    """
    if level.lower() not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        )
    numeric = getattr(logging, level.upper())
    root = logging.getLogger()
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    formatter: logging.Formatter = (
        JsonFormatter() if json_format else logging.Formatter("%(message)s")
    )
    out = logging.StreamHandler(sys.stdout)
    out.setLevel(logging.DEBUG)
    out.addFilter(_MaxLevelFilter(logging.WARNING))
    err = logging.StreamHandler(sys.stderr)
    err.setLevel(logging.WARNING)
    for handler in (out, err):
        handler.setFormatter(formatter)
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
    root.setLevel(numeric)
    return root
