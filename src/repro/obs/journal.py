"""The structured JSONL run journal: write, read, re-render.

One journal line per observable event (see :mod:`repro.obs.schema`);
the file is append-only NDJSON so a crashed run leaves a valid prefix.
The contract that makes the journal a *flight recorder* rather than a
log: :func:`reports_from_journal` re-renders the journal into
:class:`~repro.core.collie.SearchReport` objects equal to the in-memory
ones — same events, same anomalies, same totals — so every downstream
analysis (Figures 4–6, ``found_tags``, ``first_hit_times``) can run
from the file alone.

Floats survive exactly: ``json`` renders Python floats via ``repr``
(shortest round-tripping form) and NumPy scalars are coerced through
``.item()`` before serialisation, which preserves their value (and
``np.float64(x) == float(x)``, so reconstructed dataclasses still
compare equal).
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import os
from typing import IO, Iterable, Optional, Union

from repro.analysis.serialize import (
    mfs_from_dict,
    mfs_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.core.annealing import TraceEvent
from repro.core.collie import SearchReport
from repro.obs.schema import SCHEMA_VERSION


def _json_default(value):
    """Coerce NumPy scalars (``np.float64``/``np.int64``...) to Python."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"journal record value of type {type(value).__name__} "
        f"is not JSON-serialisable"
    )


class RunJournal:
    """Append-only NDJSON writer with the schema version stamped in.

    Line-buffered: each record reaches the OS as soon as it is written,
    so a killed run still leaves every completed experiment on disk.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = open(
            self.path, "w", buffering=1, encoding="utf-8"
        )
        self.records_written = 0

    def write(self, record: dict) -> None:
        if self._handle is None:
            raise ValueError("journal is closed")
        payload = {"v": SCHEMA_VERSION}
        payload.update(record)
        self._handle.write(
            json.dumps(
                payload, separators=(",", ":"), default=_json_default
            )
            + "\n"
        )
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Leading bytes of every gzip member (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def open_journal_text(path: Union[str, os.PathLike]) -> IO[str]:
    """Open a journal for reading, decompressing gzip transparently.

    Compression is sniffed from the file's magic bytes (not the name),
    so the canary corpus cells (``canary/corpus/*.jsonl.gz``) and a
    plain journal renamed to ``.gz`` both read correctly through every
    journal surface (``report``/``stats``/``journal diff``/...).
    """
    path = os.fspath(path)
    with open(path, "rb") as probe:
        magic = probe.read(len(_GZIP_MAGIC))
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def read_journal(path: Union[str, os.PathLike]) -> list[dict]:
    """Parse a journal file into records (blank lines are skipped)."""
    records, truncated = read_journal_prefix(path)
    if truncated is not None:
        raise ValueError(truncated)
    return records


def read_journal_prefix(
    path: Union[str, os.PathLike]
) -> tuple[list[dict], Optional[str]]:
    """Parse a journal's valid prefix, tolerating a truncated tail.

    A run killed mid-write leaves at most one partial line, and it is
    the *last* one (the journal is append-only and line-buffered).
    Returns ``(records, tail_error)`` where ``tail_error`` describes a
    dropped final partial line (``None`` for a clean journal).  An
    undecodable line anywhere *before* the last is not crash
    truncation — it is corruption, and still raises ``ValueError``.
    """
    records: list[dict] = []
    pending_error: Optional[str] = None
    with open_journal_text(path) as handle:
        for line_number, line in enumerate(handle, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending_error is not None:
                # The bad line was not the last one: real corruption.
                raise ValueError(pending_error)
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError as error:
                pending_error = (
                    f"{os.fspath(path)}: line {line_number} is not valid "
                    f"JSON: {error}"
                )
    if pending_error is not None:
        return records, (
            pending_error + " (truncated tail dropped)"
        )
    return records, None


# -- record constructors (the write side the recorder uses) ------------------


def experiment_record(event: TraceEvent) -> dict:
    record = {
        "t": "experiment",
        "time_seconds": event.time_seconds,
        "counter": event.counter,
        "counter_value": event.counter_value,
        "symptom": event.symptom,
        "tags": list(event.tags),
        "kind": event.kind,
        "workload": workload_to_dict(event.workload),
        "counters": dict(event.counters),
        "new_anomaly_index": event.new_anomaly_index,
    }
    # Only isolation (co-run) searches stamp interference; solo
    # journals stay byte-identical to pre-v6 writers.
    if event.interference is not None:
        record["interference"] = event.interference
    return record


def isolation_record(victim_dict: dict, victim_share, floor) -> dict:
    """The isolation run preamble (pinned victim + alone-floor)."""
    return {
        "t": "isolation",
        "victim": victim_dict,
        "victim_share": victim_share,
        "alone_gbps": floor.alone_gbps,
        "alone_p99_us": floor.alone_p99_us,
    }


def anomaly_record(index: int, event_index: Optional[int], mfs) -> dict:
    return {
        "t": "anomaly",
        "index": index,
        "event_index": event_index,
        "mfs": mfs_to_dict(mfs),
    }


#: Keys of a TraceEvent latency summary, in record order.
_LATENCY_KEYS = (
    "p50_us", "p90_us", "p99_us", "mean_us", "baseline_us", "inflation",
    "components", "tags",
)


def latency_record(event: TraceEvent) -> dict:
    """Latency twin of an experiment record (requires ``event.latency``)."""
    record = {"t": "latency", "time_seconds": event.time_seconds}
    for key in _LATENCY_KEYS:
        record[key] = event.latency[key]
    return record


# -- reconstruction (the read side) ------------------------------------------


def _event_from_record(record: dict) -> TraceEvent:
    return TraceEvent(
        time_seconds=record["time_seconds"],
        counter=record["counter"],
        counter_value=record["counter_value"],
        symptom=record["symptom"],
        tags=tuple(record["tags"]),
        workload=workload_from_dict(record["workload"]),
        kind=record["kind"],
        new_anomaly_index=record.get("new_anomaly_index"),
        counters=dict(record["counters"]),
        interference=record.get("interference"),
    )


def _report_from_run(records: list[dict]) -> SearchReport:
    """Re-render one run's records into a SearchReport.

    ``run_end`` totals are authoritative when present; a crashed run
    (no ``run_end``) reconstructs from the per-event records alone —
    experiments and events are 1:1 by construction, skips have their
    own records, and elapsed time is the last event's finish time.
    """
    start = records[0] if records and records[0].get("t") == "run_start" else {}
    events: list[TraceEvent] = []
    anomalies: list = []
    ranking: Optional[list] = None
    skips = 0
    end: Optional[dict] = None
    for record in records:
        kind = record.get("t")
        if kind == "experiment":
            events.append(_event_from_record(record))
        elif kind == "latency" and events:
            # Re-attach to its experiment: the writer emits the latency
            # record immediately after the experiment it describes.
            summary = {
                key: (
                    dict(record[key]) if key == "components"
                    else list(record[key]) if key == "tags"
                    else record[key]
                )
                for key in _LATENCY_KEYS
            }
            events[-1] = dataclasses.replace(events[-1], latency=summary)
        elif kind == "anomaly":
            anomalies.append((record["index"], record))
        elif kind == "skip":
            skips += 1
        elif kind == "ranking":
            ranking = list(record["counters"])
        elif kind == "run_end":
            end = record
    anomalies.sort(key=lambda pair: pair[0])
    anomaly_set = [mfs_from_dict(record["mfs"]) for _, record in anomalies]
    # Replay the retroactive re-tag: live journals emit the experiment
    # record before the anomaly is extracted, so the triggering event's
    # index rides on the anomaly record instead.
    for index, record in anomalies:
        event_index = record.get("event_index")
        if event_index is not None and 0 <= event_index < len(events):
            events[event_index] = dataclasses.replace(
                events[event_index], new_anomaly_index=index
            )
    if end is not None:
        experiments = end["experiments"]
        skipped = end["skipped"]
        elapsed = end["elapsed_seconds"]
        counter_ranking = list(end["counter_ranking"])
    else:
        experiments = len(events)
        skipped = skips
        elapsed = max((e.time_seconds for e in events), default=0.0)
        counter_ranking = ranking or []
    return SearchReport(
        subsystem_name=start.get("subsystem", "?"),
        counter_mode=start.get("counter_mode", "diag"),
        use_mfs=start.get("use_mfs", True),
        anomalies=anomaly_set,
        events=events,
        experiments=experiments,
        skipped_points=skipped,
        elapsed_seconds=elapsed,
        counter_ranking=counter_ranking,
    )


def run_records(records: Iterable[dict]) -> list[list[dict]]:
    """Per-run record groups, split on ``run_start`` delimiters.

    Records before the first ``run_start`` (fan-out accounting, stray
    snapshots) are ignored.  The canary's invariant pass iterates these
    groups directly so it can attribute a violation to one run without
    first paying for full report reconstruction.

    Population journals (schema v5) interleave N chains' records in one
    file; records are first demultiplexed by their ``chain`` stamp — in
    first-appearance order — then each chain's stream splits on its own
    ``run_start``.  Journals without chain stamps take the single-stream
    path unchanged.
    """
    streams: dict = {}
    order: list = []
    for record in records:
        key = record.get("chain")
        if key not in streams:
            streams[key] = []
            order.append(key)
        streams[key].append(record)
    runs: list[list[dict]] = []
    for key in order:
        current: Optional[list[dict]] = None
        for record in streams[key]:
            if record.get("t") == "run_start":
                current = [record]
                runs.append(current)
            elif current is not None:
                current.append(record)
    return runs


def reports_from_records(records: Iterable[dict]) -> list[SearchReport]:
    """Every run in a journal, re-rendered as SearchReports."""
    return [_report_from_run(run) for run in run_records(records)]


def reports_from_journal(
    path: Union[str, os.PathLike]
) -> list[SearchReport]:
    return reports_from_records(read_journal(path))


def journal_summary(records: Iterable[dict]) -> dict:
    """Shape overview of a journal: record counts, runs, anomalies.

    A run is *complete* when its ``run_start`` is matched by a
    ``run_end`` before the next run begins; anything else is a crashed
    (partial) run — ``crashed_runs`` surfaces it explicitly rather
    than letting a truncated journal masquerade as a finished one.
    Start/end matching is per chain stream (population journals
    interleave N concurrent runs in one file).
    """
    by_type: dict[str, int] = {}
    complete = 0
    in_run: dict = {}
    for record in records:
        kind = record.get("t", "?")
        by_type[kind] = by_type.get(kind, 0) + 1
        chain = record.get("chain")
        if kind == "run_start":
            in_run[chain] = True
        elif kind == "run_end" and in_run.get(chain):
            complete += 1
            in_run[chain] = False
    runs = by_type.get("run_start", 0)
    return {
        "records": sum(by_type.values()),
        "runs": runs,
        "complete_runs": complete,
        "crashed_runs": runs - complete,
        "experiments": by_type.get("experiment", 0),
        "anomalies": by_type.get("anomaly", 0),
        "transitions": by_type.get("transition", 0),
        "skips": by_type.get("skip", 0),
        "cache_events": by_type.get("cache", 0),
        "retries": by_type.get("retry", 0),
        "quarantines": by_type.get("quarantine", 0),
        "heartbeats": by_type.get("heartbeat", 0),
        "by_type": dict(sorted(by_type.items())),
    }


# -- verification (the ``repro journal verify`` surface) ----------------------

#: ``verify_journal`` verdict codes (doubling as CLI exit codes).
VERIFY_OK = 0          #: valid and every run ran to completion.
VERIFY_INCOMPLETE = 1  #: valid prefix, but crashed/partial state.
VERIFY_CORRUPT = 2     #: unreadable, mid-file corruption, bad schema.


def verify_journal(path: Union[str, os.PathLike]) -> tuple[int, list[str]]:
    """Check a journal file end to end: ``(verdict, messages)``.

    Verdicts: :data:`VERIFY_OK` — schema-valid and every run is
    complete; :data:`VERIFY_INCOMPLETE` — the valid prefix is usable
    (resumable) but the journal records an interrupted campaign
    (truncated final line and/or a ``run_start`` with no ``run_end``);
    :data:`VERIFY_CORRUPT` — the file is unreadable, corrupt before
    its final line, or fails schema validation.
    """
    from repro.obs.schema import validate_journal

    messages: list[str] = []
    try:
        records, tail_error = read_journal_prefix(path)
    except OSError as error:
        return VERIFY_CORRUPT, [f"cannot read journal: {error}"]
    except ValueError as error:
        return VERIFY_CORRUPT, [str(error)]
    errors = validate_journal(records)
    if errors and records:
        return VERIFY_CORRUPT, errors
    if not records:
        messages.append("journal is empty")
        if tail_error is not None:
            messages.append(tail_error)
        return VERIFY_INCOMPLETE, messages
    verdict = VERIFY_OK
    if tail_error is not None:
        verdict = VERIFY_INCOMPLETE
        messages.append(tail_error)
    shape = journal_summary(records)
    if shape["crashed_runs"]:
        verdict = VERIFY_INCOMPLETE
        messages.append(
            f"{shape['crashed_runs']} of {shape['runs']} run(s) never "
            f"wrote a run_end record (crashed or still in flight)"
        )
    if verdict == VERIFY_OK:
        messages.append(
            f"journal is complete: {shape['records']} records, "
            f"{shape['complete_runs']} finished run(s)"
        )
    return verdict, messages
