"""The structured JSONL run journal: write, read, re-render.

One journal line per observable event (see :mod:`repro.obs.schema`);
the file is append-only NDJSON so a crashed run leaves a valid prefix.
The contract that makes the journal a *flight recorder* rather than a
log: :func:`reports_from_journal` re-renders the journal into
:class:`~repro.core.collie.SearchReport` objects equal to the in-memory
ones — same events, same anomalies, same totals — so every downstream
analysis (Figures 4–6, ``found_tags``, ``first_hit_times``) can run
from the file alone.

Floats survive exactly: ``json`` renders Python floats via ``repr``
(shortest round-tripping form) and NumPy scalars are coerced through
``.item()`` before serialisation, which preserves their value (and
``np.float64(x) == float(x)``, so reconstructed dataclasses still
compare equal).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import IO, Iterable, Optional, Union

from repro.analysis.serialize import (
    mfs_from_dict,
    mfs_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.core.annealing import TraceEvent
from repro.core.collie import SearchReport
from repro.obs.schema import SCHEMA_VERSION


def _json_default(value):
    """Coerce NumPy scalars (``np.float64``/``np.int64``...) to Python."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"journal record value of type {type(value).__name__} "
        f"is not JSON-serialisable"
    )


class RunJournal:
    """Append-only NDJSON writer with the schema version stamped in.

    Line-buffered: each record reaches the OS as soon as it is written,
    so a killed run still leaves every completed experiment on disk.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = open(
            self.path, "w", buffering=1, encoding="utf-8"
        )
        self.records_written = 0

    def write(self, record: dict) -> None:
        if self._handle is None:
            raise ValueError("journal is closed")
        payload = {"v": SCHEMA_VERSION}
        payload.update(record)
        self._handle.write(
            json.dumps(
                payload, separators=(",", ":"), default=_json_default
            )
            + "\n"
        )
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: Union[str, os.PathLike]) -> list[dict]:
    """Parse a journal file into records (blank lines are skipped)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}: line {line_number} is not valid JSON: {error}"
                ) from error
    return records


# -- record constructors (the write side the recorder uses) ------------------


def experiment_record(event: TraceEvent) -> dict:
    return {
        "t": "experiment",
        "time_seconds": event.time_seconds,
        "counter": event.counter,
        "counter_value": event.counter_value,
        "symptom": event.symptom,
        "tags": list(event.tags),
        "kind": event.kind,
        "workload": workload_to_dict(event.workload),
        "counters": dict(event.counters),
        "new_anomaly_index": event.new_anomaly_index,
    }


def anomaly_record(index: int, event_index: Optional[int], mfs) -> dict:
    return {
        "t": "anomaly",
        "index": index,
        "event_index": event_index,
        "mfs": mfs_to_dict(mfs),
    }


# -- reconstruction (the read side) ------------------------------------------


def _event_from_record(record: dict) -> TraceEvent:
    return TraceEvent(
        time_seconds=record["time_seconds"],
        counter=record["counter"],
        counter_value=record["counter_value"],
        symptom=record["symptom"],
        tags=tuple(record["tags"]),
        workload=workload_from_dict(record["workload"]),
        kind=record["kind"],
        new_anomaly_index=record.get("new_anomaly_index"),
        counters=dict(record["counters"]),
    )


def _report_from_run(records: list[dict]) -> SearchReport:
    """Re-render one run's records into a SearchReport.

    ``run_end`` totals are authoritative when present; a crashed run
    (no ``run_end``) reconstructs from the per-event records alone —
    experiments and events are 1:1 by construction, skips have their
    own records, and elapsed time is the last event's finish time.
    """
    start = records[0] if records and records[0].get("t") == "run_start" else {}
    events: list[TraceEvent] = []
    anomalies: list = []
    ranking: Optional[list] = None
    skips = 0
    end: Optional[dict] = None
    for record in records:
        kind = record.get("t")
        if kind == "experiment":
            events.append(_event_from_record(record))
        elif kind == "anomaly":
            anomalies.append((record["index"], record))
        elif kind == "skip":
            skips += 1
        elif kind == "ranking":
            ranking = list(record["counters"])
        elif kind == "run_end":
            end = record
    anomalies.sort(key=lambda pair: pair[0])
    anomaly_set = [mfs_from_dict(record["mfs"]) for _, record in anomalies]
    # Replay the retroactive re-tag: live journals emit the experiment
    # record before the anomaly is extracted, so the triggering event's
    # index rides on the anomaly record instead.
    for index, record in anomalies:
        event_index = record.get("event_index")
        if event_index is not None and 0 <= event_index < len(events):
            events[event_index] = dataclasses.replace(
                events[event_index], new_anomaly_index=index
            )
    if end is not None:
        experiments = end["experiments"]
        skipped = end["skipped"]
        elapsed = end["elapsed_seconds"]
        counter_ranking = list(end["counter_ranking"])
    else:
        experiments = len(events)
        skipped = skips
        elapsed = max((e.time_seconds for e in events), default=0.0)
        counter_ranking = ranking or []
    return SearchReport(
        subsystem_name=start.get("subsystem", "?"),
        counter_mode=start.get("counter_mode", "diag"),
        use_mfs=start.get("use_mfs", True),
        anomalies=anomaly_set,
        events=events,
        experiments=experiments,
        skipped_points=skipped,
        elapsed_seconds=elapsed,
        counter_ranking=counter_ranking,
    )


def reports_from_records(records: Iterable[dict]) -> list[SearchReport]:
    """Every run in a journal, re-rendered as SearchReports.

    Runs are delimited by ``run_start`` records; records before the
    first ``run_start`` (fan-out accounting, stray snapshots) are
    ignored.
    """
    runs: list[list[dict]] = []
    for record in records:
        if record.get("t") == "run_start":
            runs.append([record])
        elif runs:
            runs[-1].append(record)
    return [_report_from_run(run) for run in runs]


def reports_from_journal(
    path: Union[str, os.PathLike]
) -> list[SearchReport]:
    return reports_from_records(read_journal(path))


def journal_summary(records: Iterable[dict]) -> dict:
    """Shape overview of a journal: record counts, runs, anomalies."""
    by_type: dict[str, int] = {}
    for record in records:
        kind = record.get("t", "?")
        by_type[kind] = by_type.get(kind, 0) + 1
    return {
        "records": sum(by_type.values()),
        "runs": by_type.get("run_start", 0),
        "experiments": by_type.get("experiment", 0),
        "anomalies": by_type.get("anomaly", 0),
        "transitions": by_type.get("transition", 0),
        "skips": by_type.get("skip", 0),
        "cache_events": by_type.get("cache", 0),
        "by_type": dict(sorted(by_type.items())),
    }
