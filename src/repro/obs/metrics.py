"""Labeled metrics registry: counters, gauges, histograms, timers.

A deliberately small, dependency-free registry in the Prometheus data
model: a metric is a name plus a sorted label set; counters accumulate,
gauges overwrite, histograms keep a streaming summary (count / sum /
min / max) rather than raw samples so a million observations cost four
floats.  ``timer()`` is the span API: a context manager observing its
real elapsed seconds into a histogram.

The registry is thread-safe (the campaign executor reports fan-out
stats from the parent thread while a search instruments itself) and its
``snapshot()`` is plain JSON — it is what the run journal's ``snapshot``
and ``run_end`` records embed.
"""

from __future__ import annotations

import bisect
import dataclasses
import threading
import time
from typing import Iterator


def render_key(name: str, labels: dict) -> str:
    """Prometheus-style rendered series name: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _bucket_bounds() -> tuple[float, ...]:
    # 1-2.5-5 log ladder over 1ns .. ~10^9: wide enough for both span
    # seconds and simulated-second observations.
    return tuple(
        mantissa * 10.0 ** exponent
        for exponent in range(-9, 10)
        for mantissa in (1.0, 2.5, 5.0)
    )


#: Fixed upper bounds of the percentile buckets (plus an implicit
#: overflow bucket).  Fixed bounds keep histograms mergeable and O(1)
#: per observation; percentiles interpolate linearly inside the winning
#: bucket and are clamped to the observed [min, max].
BUCKET_BOUNDS = _bucket_bounds()


@dataclasses.dataclass
class HistogramSummary:
    """Streaming summary of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    bucket_counts: list = dataclasses.field(
        default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1), repr=False
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.bucket_counts[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Bucket-interpolated percentile estimate, clamped to [min, max].

        The requested rank is located in a bucket, then interpolated
        linearly between the bucket's bounds (narrowed to the observed
        [min, max]) by its position among the bucket's observations —
        so a distribution that lands entirely inside one bucket still
        resolves sub-bucket percentiles instead of collapsing every
        quantile onto the bucket's upper bound.
        """
        if self.count == 0:
            return 0.0
        rank = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS) else self.maximum
                )
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else self.minimum
                upper = min(upper, self.maximum)
                lower = min(max(lower, self.minimum), upper)
                position = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Thread-safe store of labeled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, HistogramSummary] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    # -- the instrument API ------------------------------------------------

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` (default 1) to a monotonically growing series."""
        key = self._key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time series to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[self._key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into a histogram series."""
        key = self._key(name, labels)
        with self._lock:
            summary = self._histograms.get(key)
            if summary is None:
                summary = self._histograms[key] = HistogramSummary()
            summary.observe(float(value))

    def timer(self, name: str, **labels) -> "_Span":
        """Span API: ``with metrics.timer("solve.wall"): ...`` observes
        the block's real elapsed seconds into the named histogram."""
        return _Span(self, name, labels)

    # -- reading back ------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of a counter or gauge series (0.0 if unseen)."""
        key = self._key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0.0)

    def histogram(self, name: str, **labels) -> HistogramSummary:
        """Copy of a histogram summary (empty if the series is unseen)."""
        key = self._key(name, labels)
        with self._lock:
            summary = self._histograms.get(key)
            if summary is None:
                return HistogramSummary()
            return dataclasses.replace(
                summary, bucket_counts=list(summary.bucket_counts)
            )

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Counter series whose name starts with ``prefix``, rendered.

        The CLI uses this to summarise one namespace after a run (e.g.
        every ``faults.*`` series of a resilient campaign) without
        dumping the whole registry.
        """
        with self._lock:
            return {
                render_key(name, dict(labels)): value
                for (name, labels), value in sorted(self._counters.items())
                if name.startswith(prefix)
            }

    def series(self) -> Iterator[str]:
        """All rendered series names, sorted."""
        with self._lock:
            keys = (
                list(self._counters) + list(self._gauges)
                + list(self._histograms)
            )
        return iter(sorted(render_key(name, dict(labels)) for name, labels in keys))

    def snapshot(self) -> dict:
        """JSON-able dump of every series (journal ``snapshot`` payload)."""
        with self._lock:
            return {
                "counters": {
                    render_key(name, dict(labels)): value
                    for (name, labels), value in sorted(self._counters.items())
                },
                "gauges": {
                    render_key(name, dict(labels)): value
                    for (name, labels), value in sorted(self._gauges.items())
                },
                "histograms": {
                    render_key(name, dict(labels)): summary.as_dict()
                    for (name, labels), summary in sorted(
                        self._histograms.items()
                    )
                },
            }

    def describe(self) -> str:
        """Human-readable registry dump (CLI surface)."""
        snap = self.snapshot()
        lines = []
        for key, value in snap["counters"].items():
            lines.append(f"  {key:<48} {value:>12g}")
        for key, value in snap["gauges"].items():
            lines.append(f"  {key:<48} {value:>12g} (gauge)")
        for key, summary in snap["histograms"].items():
            lines.append(
                f"  {key:<48} n={summary['count']} "
                f"mean={summary['mean']:.4g} "
                f"p50={summary['p50']:.4g} p99={summary['p99']:.4g} "
                f"min={summary['min']:.4g} max={summary['max']:.4g}"
            )
        return "\n".join(lines) if lines else "  (no metrics recorded)"


class _Span:
    """Context manager observing its real elapsed seconds."""

    def __init__(self, registry: MetricsRegistry, name: str, labels: dict):
        self._registry = registry
        self._name = name
        self._labels = labels
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._started, **self._labels
        )
