"""Prometheus-text exporter: scrape a live run's metrics over HTTP.

Two pieces:

* :func:`render_prometheus` — pure rendering of a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot (and, when
  given, a :class:`~repro.obs.aggregate.CampaignAggregator` snapshot)
  into the Prometheus text exposition format (v0.0.4): counters as
  ``*_total``, gauges as gauges, histogram summaries as
  ``{quantile=...}`` series plus ``_count``/``_sum``;
* :class:`TelemetryServer` — a stdlib ``http.server`` thread serving
  ``GET /metrics`` (text exposition) and ``GET /status`` (the
  aggregator snapshot as JSON: per-worker liveness table, per-source
  rollups, anomaly timeline).

The server is strictly read-side: scrapes happen on the server thread,
refresh only the *aggregator* (a journal reader), and never touch the
search — the run stays bit-identical with a scraper attached.  Binding
``port=0`` picks an ephemeral port (``.port`` reports the real one),
which is what the tests and the CI telemetry job use.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

logger = logging.getLogger("repro.obs.export")

#: Quantiles a histogram summary exposes (matching ``as_dict``).
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(name: str, prefix: str = "repro") -> str:
    """Prometheus-legal metric name: dots and dashes become underscores."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _parse_series_key(key: str) -> tuple[str, dict]:
    """Invert :func:`repro.obs.metrics.render_key`: name + label dict."""
    name, brace, rest = key.partition("{")
    if not brace:
        return name, {}
    labels = {}
    for part in rest.rstrip("}").split(","):
        label, _, value = part.partition("=")
        if label:
            labels[label] = value
    return name, labels


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _series(name: str, labels: dict, value) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(val)}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


def render_prometheus(
    metrics_snapshot: Optional[dict] = None,
    aggregate_snapshot: Optional[dict] = None,
    prefix: str = "repro",
) -> str:
    """Render registry + aggregator snapshots as text exposition.

    Both inputs are the plain-dict snapshots the rest of the repo
    already produces (``MetricsRegistry.snapshot()``,
    ``CampaignAggregator.snapshot()``), so journaled ``run_end``
    metrics dumps render just as well as live registries.
    """
    lines: list[str] = []
    snapshot = metrics_snapshot or {}
    emitted_types: set = set()

    def emit(name: str, kind: str, labels: dict, value) -> None:
        if value is None:
            return
        if name not in emitted_types:
            lines.append(f"# TYPE {name} {kind}")
            emitted_types.add(name)
        lines.append(_series(name, labels, float(value)))

    for key, value in snapshot.get("counters", {}).items():
        raw, labels = _parse_series_key(key)
        emit(_metric_name(raw, prefix) + "_total", "counter", labels, value)
    for key, value in snapshot.get("gauges", {}).items():
        raw, labels = _parse_series_key(key)
        emit(_metric_name(raw, prefix), "gauge", labels, value)
    for key, summary in snapshot.get("histograms", {}).items():
        raw, labels = _parse_series_key(key)
        name = _metric_name(raw, prefix)
        for quantile, stat in _QUANTILES:
            emit(
                name, "summary",
                dict(labels, quantile=quantile), summary.get(stat),
            )
        emit(name + "_count", "counter", labels, summary.get("count"))
        emit(name + "_sum", "counter", labels, summary.get("sum"))

    if aggregate_snapshot is not None:
        totals = aggregate_snapshot.get("totals", {})
        campaign = {
            "campaign_experiments_total": ("counter", "experiments"),
            "campaign_anomalies_total": ("counter", "anomalies"),
            "campaign_skips_total": ("counter", "skips"),
            "campaign_runs_total": ("counter", "runs"),
            "campaign_complete_runs_total": ("counter", "complete_runs"),
            "campaign_ttfa_seconds": (
                "gauge", "time_to_first_anomaly_seconds"
            ),
            "campaign_coverage_fraction": ("gauge", "coverage_fraction"),
            "campaign_cache_hit_rate": ("gauge", "cache_hit_rate"),
            "campaign_latency_p99_us": ("gauge", "latency_p99_us"),
            "campaign_workers_alive": ("gauge", "workers_alive"),
        }
        for metric, (kind, key) in campaign.items():
            emit(_metric_name(metric, prefix), kind, {}, totals.get(key))
        for row in aggregate_snapshot.get("workers", ()):
            labels = {
                "source": row["source"], "worker": str(row["worker"]),
            }
            emit(
                _metric_name("worker_up", prefix), "gauge",
                labels, 1.0 if row["alive"] else 0.0,
            )
            emit(
                _metric_name("worker_heartbeat_age_seconds", prefix),
                "gauge", labels, row["age_seconds"],
            )
            emit(
                _metric_name("worker_tasks_done", prefix), "gauge",
                labels, row["done"],
            )
    return "\n".join(lines) + ("\n" if lines else "")


class TelemetryServer:
    """Background HTTP thread exposing ``/metrics`` and ``/status``.

    ``metrics`` is a live :class:`~repro.obs.metrics.MetricsRegistry`
    (snapshotted per scrape — it is thread-safe by construction);
    ``aggregator`` is an optional
    :class:`~repro.obs.aggregate.CampaignAggregator`, refreshed at
    scrape time on the server thread so no background polling runs
    between scrapes.
    """

    def __init__(
        self,
        metrics=None,
        aggregator=None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.metrics = metrics
        self.aggregator = aggregator
        # One scrape at a time: the aggregator's fold is not re-entrant
        # and ThreadingHTTPServer handles requests concurrently.
        self._scrape_lock = threading.Lock()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr
                logger.debug("telemetry: %s", args)

            def do_GET(self) -> None:
                try:
                    if self.path.split("?")[0] == "/metrics":
                        body = server.scrape_metrics().encode("utf-8")
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif self.path.split("?")[0] == "/status":
                        body = server.scrape_status().encode("utf-8")
                        ctype = "application/json"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as error:  # surface, don't kill thread
                    self.send_error(500, str(error))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    # -- scrape bodies (also used directly by tests) ------------------------

    def scrape_metrics(self) -> str:
        with self._scrape_lock:
            if self.aggregator is not None:
                self.aggregator.refresh()
            return render_prometheus(
                self.metrics.snapshot() if self.metrics is not None else {},
                self.aggregator.snapshot()
                if self.aggregator is not None else None,
            )

    def scrape_status(self) -> str:
        with self._scrape_lock:
            if self.aggregator is None:
                payload: dict = {"sources": [], "totals": {}, "workers": []}
            else:
                self.aggregator.refresh()
                payload = self.aggregator.snapshot()
        return json.dumps(payload, indent=2, sort_keys=True)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
