"""Hierarchical span profiler: where a search's wall-clock went.

A :class:`SpanProfiler` records nested wall-clock spans
(``search > pass > iteration > solve`` …) as ``(path, start, duration)``
tuples relative to the profiler's origin.  Like the rest of the
observatory it is purely observational: spans use ``time.perf_counter``
only — never the simulated clock, never the RNG — so a profiled search
is bit-identical to an unprofiled one, and every instrumented site pays
a single ``profiler is not None`` check when disabled.

The recorded events render three ways:

* :func:`render_span_table` — a terminal self-time table whose self
  seconds telescope to exactly the measured root wall-clock;
* :func:`chrome_trace` — Chrome trace-event JSON for chrome://tracing
  or Perfetto (:func:`validate_chrome_trace` schema-checks it);
* :func:`spans_records` — schema-v3 ``spans`` journal records, from
  which :func:`events_from_records` round-trips the event list.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: Path separator between nested span names.
SEP = "/"

#: Events per journaled ``spans`` record (keeps lines bounded).
SPANS_CHUNK = 512


class SpanProfiler:
    """Thread-safe collector of hierarchical wall-clock spans."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics
        self._lock = threading.Lock()
        self._local = threading.local()
        self._events: list[tuple[str, float, float]] = []
        self._origin = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def span(self, name: str) -> "_Span":
        """Context manager timing one span nested under the current one."""
        return _Span(self, name)

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, path: str, start: float, duration: float) -> None:
        with self._lock:
            self._events.append((path, start, duration))
        if self.metrics is not None:
            self.metrics.observe("span.seconds", duration, span=path)

    # -- access -------------------------------------------------------------

    def events(self) -> list[tuple[str, float, float]]:
        """All recorded ``(path, start, duration)`` events so far."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class _Span:
    """One active span; records itself on ``__exit__``."""

    __slots__ = ("_profiler", "_name", "_path", "_start")

    def __init__(self, profiler: SpanProfiler, name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._profiler._stack()
        parent = stack[-1] if stack else ""
        self._path = f"{parent}{SEP}{self._name}" if parent else self._name
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = self._profiler._stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        self._profiler._record(
            self._path, self._start - self._profiler._origin,
            end - self._start,
        )
        return False


# -- analysis ---------------------------------------------------------------


def span_totals(events) -> dict[str, dict]:
    """Per-path ``{"count", "total"}`` aggregation of span events."""
    totals: dict[str, dict] = {}
    for path, _start, duration in events:
        entry = totals.setdefault(path, {"count": 0, "total": 0.0})
        entry["count"] += 1
        entry["total"] += duration
    return totals


def self_times(events) -> dict[str, float]:
    """Per-path self seconds: total minus direct children's totals.

    Self times telescope — summed over every path they equal the total
    of the root spans exactly, so a self-time table always accounts for
    100% of the measured wall-clock.
    """
    totals = span_totals(events)
    selves = {path: entry["total"] for path, entry in totals.items()}
    for path, entry in totals.items():
        if SEP in path:
            parent = path.rsplit(SEP, 1)[0]
            if parent in selves:
                selves[parent] -= entry["total"]
    return selves


def measured_wall_seconds(events) -> float:
    """Total wall-clock covered by root (unnested) spans."""
    return sum(
        entry["total"] for path, entry in span_totals(events).items()
        if SEP not in path
    )


def render_span_table(events) -> str:
    """Terminal self-time table, deepest-spender first."""
    if not events:
        return "no spans recorded"
    totals = span_totals(events)
    selves = self_times(events)
    wall = measured_wall_seconds(events)
    lines = [
        f"{'span':<40} {'count':>7} {'total s':>10} "
        f"{'self s':>10} {'self %':>7}"
    ]
    accounted = 0.0
    for path in sorted(totals, key=lambda p: -selves[p]):
        entry = totals[path]
        share = selves[path] / wall * 100.0 if wall > 0 else 0.0
        accounted += selves[path]
        lines.append(
            f"{path:<40} {entry['count']:>7d} {entry['total']:>10.3f} "
            f"{selves[path]:>10.3f} {share:>6.1f}%"
        )
    covered = accounted / wall * 100.0 if wall > 0 else 100.0
    lines.append(
        f"measured wall-clock {wall:.3f}s; "
        f"self times account for {covered:.1f}%"
    )
    return "\n".join(lines)


# -- chrome trace-event export ----------------------------------------------


def chrome_trace(events, pid: int = 0, tid: int = 0) -> dict:
    """Chrome trace-event JSON (complete 'X' events, microseconds)."""
    trace_events = [
        {
            "name": path.rsplit(SEP, 1)[-1],
            "cat": "span",
            "ph": "X",
            "ts": start * 1e6,
            "dur": duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"path": path},
        }
        for path, start, duration in events
    ]
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace) -> list[str]:
    """Schema errors in a Chrome trace-event document ([] when valid)."""
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["trace document must be a JSON object"]
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["trace document must have a 'traceEvents' list"]
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing or empty 'name'")
        if event.get("ph") != "X":
            errors.append(f"{where}: 'ph' must be 'X'")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}: '{field}' must be a number")
            elif value < 0:
                errors.append(f"{where}: '{field}' must be >= 0")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}: '{field}' must be an integer")
    return errors


# -- journal round-trip -----------------------------------------------------


def spans_records(events, chunk: int = SPANS_CHUNK):
    """Journal ``spans`` records covering the events, chunked."""
    for offset in range(0, len(events), chunk):
        yield {
            "t": "spans",
            "events": [
                [path, start, duration]
                for path, start, duration in events[offset:offset + chunk]
            ],
        }


def events_from_records(records) -> list[tuple[str, float, float]]:
    """Span events inlined in a journal's ``spans`` records."""
    events: list[tuple[str, float, float]] = []
    for record in records:
        if record.get("t") == "spans":
            events.extend(
                (str(path), float(start), float(duration))
                for path, start, duration in record["events"]
            )
    return events
