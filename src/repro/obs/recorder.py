"""The flight recorder: the façade every instrumented hot path calls.

A :class:`FlightRecorder` bundles the three observability channels —
metrics registry, JSONL run journal, periodic progress lines — behind
one object that the search machinery receives as an optional
``recorder`` parameter.  Design rules the hot paths rely on:

* **zero-cost when absent** — every call site guards with a single
  ``recorder is not None`` check, so an uninstrumented run does no
  extra work;
* **no RNG, no clock writes** — the recorder only *observes*; it never
  consumes random draws or advances the simulated clock, so a recorded
  run is bit-identical to an unrecorded one (pinned by the test suite);
* **crash-safe** — journal records are written line-buffered as events
  happen, never batched until the end.

``record_report`` covers the process-parallel paths: a recorder holds
an open file handle and cannot cross a process boundary, so fleet /
campaign runs journal post-hoc from the reports their workers return.
"""

from __future__ import annotations

import logging
import time
from typing import Optional

from repro.analysis.serialize import workload_to_dict
from repro.obs.coverage import CoverageTracker
from repro.obs.journal import (
    RunJournal,
    anomaly_record,
    experiment_record,
    isolation_record,
    latency_record,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SpanProfiler, spans_records

#: Progress lines go through this logger at INFO (CLI surfaces enable it).
progress_logger = logging.getLogger("repro.obs.progress")


class FlightRecorder:
    """Metrics + journal + live progress for one search campaign."""

    def __init__(
        self,
        journal: Optional[RunJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress_every: int = 0,
        profiler: Optional[SpanProfiler] = None,
        track_coverage: bool = False,
        heartbeats: bool = False,
    ) -> None:
        self.journal = journal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Emit a progress snapshot every N experiments (0 = never).
        self.progress_every = progress_every
        #: Optional span profiler the hot paths thread through (the
        #: observatory); spans flush to the journal at run_end/close.
        self.profiler = profiler
        #: Track 4-D workload-space coverage (one tracker per run).
        self.track_coverage = track_coverage
        self.coverage: Optional[CoverageTracker] = None
        #: Journal schema-v7 ``heartbeat`` records as fan-out tasks
        #: complete (live telemetry only).  Off by default: heartbeats
        #: carry wall clock, the one nondeterministic field the journal
        #: admits, so only surfaces that strip them (the exporter /
        #: dashboard plane) turn this on.  Wall time never enters the
        #: metrics registry — ``run_end`` embeds a registry snapshot,
        #: and that must stay bit-identical to an untelemetered run.
        self.heartbeats = heartbeats
        #: Optional attached :class:`~repro.obs.export.TelemetryServer`
        #: (owned by the CLI: opened with the recorder, closed with it).
        self.telemetry = None
        #: Which population chain this recorder writes for.  ``None``
        #: (single-trajectory runs) stamps nothing, keeping legacy
        #: journals byte-identical; an int stamps every record with
        #: ``"chain": n`` (schema v5) so readers can demultiplex the
        #: interleaved streams of a population run.
        self.chain: Optional[int] = None
        self._experiments_seen = 0
        self._spans_flushed = 0
        #: Experiment count of the current run's last ``snapshot``
        #: record (None = none yet), so run_end can close the
        #: final-progress gap without duplicating a snapshot that the
        #: modulus already emitted at exactly the final count.
        self._last_snapshot_experiments: Optional[int] = None

    def for_chain(self, chain: int) -> "FlightRecorder":
        """A chain-stamped view sharing this recorder's journal/metrics.

        The population driver hands each SA chain its own view: records
        land interleaved in the one journal, each stamped with the
        chain id.  Views never own the journal — only the parent's
        :meth:`close` closes it — and carry no profiler (spans would
        interleave wrongly across chains suspended mid-iteration).
        """
        view = FlightRecorder(
            journal=self.journal,
            metrics=self.metrics,
            progress_every=self.progress_every,
            profiler=None,
            track_coverage=self.track_coverage,
            heartbeats=self.heartbeats,
        )
        view.chain = chain
        return view

    def _write(self, record: dict) -> None:
        if self.chain is not None:
            record["chain"] = self.chain
        self.journal.write(record)

    # -- run lifecycle -----------------------------------------------------

    def run_start(
        self,
        subsystem_name: str,
        counter_mode: str,
        use_mfs: bool,
        budget_hours: float,
        seed: Optional[int],
        space=None,
    ) -> None:
        self.metrics.counter("search.runs")
        self._last_snapshot_experiments = None
        if self.track_coverage:
            self.coverage = (
                CoverageTracker(space) if space is not None
                else CoverageTracker.for_subsystem(subsystem_name)
            )
        if self.journal is not None:
            self._write({
                "t": "run_start",
                "subsystem": subsystem_name,
                "counter_mode": counter_mode,
                "use_mfs": use_mfs,
                "budget_hours": budget_hours,
                "seed": seed,
            })

    def isolation(self, victim, victim_share: float, floor) -> None:
        """The co-run context of an isolation run (right after run_start).

        Journals the pinned victim, its bandwidth share, and the
        deterministic alone-floor the victim-degradation verdicts
        compare against, so a reader can interpret the run's
        ``interference`` values without re-solving anything.
        """
        self.metrics.counter("isolation.runs")
        if self.journal is not None:
            self._write(isolation_record(
                workload_to_dict(victim), victim_share, floor,
            ))

    def ranking(
        self, counters: list, dispersions: Optional[dict] = None
    ) -> None:
        if self.journal is not None:
            self._write({
                "t": "ranking",
                "counters": list(counters),
                "dispersions": dict(dispersions) if dispersions else None,
            })

    def run_end(self, report) -> None:
        self._run_end_totals(
            report.elapsed_seconds, report.experiments,
            report.skipped_points, len(report.anomalies),
            report.counter_ranking,
        )

    def _run_end_totals(
        self, elapsed_seconds: float, experiments: int, skipped: int,
        anomalies: int, counter_ranking: list,
    ) -> None:
        if self.journal is not None:
            # Close the final-progress gap: the modulus only fires every
            # N experiments, so the run's tail (and any run shorter than
            # N) would otherwise never snapshot.  Skip only when the
            # last periodic snapshot already landed on the final count.
            if (
                self.progress_every
                and experiments != self._last_snapshot_experiments
            ):
                self._write({
                    "t": "snapshot",
                    "time_seconds": elapsed_seconds,
                    "experiments": experiments,
                    "anomalies": anomalies,
                    "skipped": skipped,
                    "metrics": self.metrics.snapshot(),
                })
            if self.coverage is not None:
                self._write(self.coverage.as_record(elapsed_seconds))
            self._flush_spans()
            self._write({
                "t": "run_end",
                "elapsed_seconds": elapsed_seconds,
                "experiments": experiments,
                "skipped": skipped,
                "anomalies": anomalies,
                "counter_ranking": list(counter_ranking),
                "metrics": self.metrics.snapshot(),
            })

    # -- search events (live instrumentation) ------------------------------

    def experiment(self, event, state) -> None:
        """One measured experiment (a freshly appended TraceEvent)."""
        self.metrics.counter("search.experiments", kind=event.kind)
        self.metrics.counter("search.symptoms", symptom=event.symptom)
        if event.latency is not None:
            self.metrics.observe(
                "search.latency_p99_us", event.latency["p99_us"]
            )
        interference = getattr(event, "interference", None)
        if interference is not None:
            self.metrics.observe("isolation.interference", interference)
        if self.coverage is not None:
            self.coverage.visit(event.workload)
        if self.journal is not None:
            self._write(experiment_record(event))
            if event.latency is not None:
                self._write(latency_record(event))
        self._experiments_seen += 1
        if (
            self.progress_every
            and self._experiments_seen % self.progress_every == 0
        ):
            self._progress_snapshot(event.time_seconds, state)

    def transition(
        self, time_seconds: float, action: str,
        temperature: float, delta: float, mutated: tuple = (),
    ) -> None:
        """One SA decision (improve/accept/reject/restart/reheat).

        ``mutated`` labels the dimensions the candidate mutation
        changed (schema v3) — the raw material of the observatory's
        per-dimension mutation-effectiveness diagnostics.
        """
        self.metrics.counter("sa.transitions", action=action)
        self.metrics.gauge("sa.temperature", temperature)
        self.metrics.observe("sa.delta_energy", delta)
        for dimension in mutated:
            self.metrics.counter("sa.mutations", dimension=dimension)
            if action == "improve":
                self.metrics.counter("sa.improvements", dimension=dimension)
        if self.journal is not None:
            self._write({
                "t": "transition",
                "time_seconds": time_seconds,
                "action": action,
                "temperature": temperature,
                "delta": delta,
                "mutated": list(mutated),
            })

    def skip(self, time_seconds: float, workload=None) -> None:
        """A candidate matched a known MFS; no experiment was run."""
        self.metrics.counter("search.skips")
        if self.coverage is not None:
            self.coverage.skip(workload)
        if self.journal is not None:
            record = {"t": "skip", "time_seconds": time_seconds}
            if workload is not None:
                record["workload"] = workload_to_dict(workload)
            self._write(record)

    def anomaly(self, index: int, event_index: Optional[int], mfs) -> None:
        """A new MFS entered the anomaly set."""
        self.metrics.counter("search.anomalies")
        self.metrics.counter("mfs.extractions")
        self.metrics.counter("mfs.probe_experiments", mfs.probe_experiments)
        if self.coverage is not None:
            self.coverage.mark_mfs(mfs)
        if self.journal is not None:
            self._write(anomaly_record(index, event_index, mfs))

    def cache_event(self, phase: str, hit: bool) -> None:
        """One evaluation-cache lookup (wired as the cache's observer)."""
        outcome = "hit" if hit else "miss"
        self.metrics.counter("cache.lookups", phase=phase, outcome=outcome)
        if self.journal is not None:
            self._write({"t": "cache", "phase": phase, "hit": hit})

    # -- fan-out (executor / fleet) ----------------------------------------

    def fanout(self, stats) -> None:
        """Executor accounting of one completed fan-out."""
        self.metrics.counter("executor.tasks", stats.tasks)
        self.metrics.observe("executor.wall_seconds", stats.wall_seconds)
        self.metrics.observe("executor.busy_seconds", stats.busy_seconds)
        self.metrics.gauge("executor.workers", stats.workers)
        if self.journal is not None:
            self._write({
                "t": "fanout",
                "tasks": stats.tasks,
                "workers": stats.workers,
                "wall_seconds": stats.wall_seconds,
                "busy_seconds": stats.busy_seconds,
                "fell_back_serial": stats.fell_back_serial,
                # Resilience accounting (extra fields; schema-v2 readers
                # and v1 validators both tolerate them).
                "retries": getattr(stats, "retries", 0),
                "timeouts": getattr(stats, "timeouts", 0),
                "injected_faults": getattr(stats, "injected_faults", 0),
                "backoff_seconds": getattr(stats, "backoff_seconds", 0.0),
                "quarantined_hosts": list(
                    getattr(stats, "quarantined_hosts", ())
                ),
                "redistributed_tasks": getattr(
                    stats, "redistributed_tasks", 0
                ),
            })

    def task_progress(self, done: int, total: int) -> None:
        """One fan-out task finished (live campaign progress)."""
        if self.progress_every:
            progress_logger.info("progress: task %d/%d complete", done, total)

    def heartbeat(self, worker: int, done: int, total: int) -> None:
        """Executor liveness for the live-telemetry plane (schema v7).

        Journal-only by design: the ``wall_time`` envelope field is the
        single nondeterministic value the journal ever carries, and it
        must never reach the metrics registry (``snapshot``/``run_end``
        records embed registry dumps, which stay bit-identical to a
        bare run).  No-op unless :attr:`heartbeats` was requested.
        """
        if not self.heartbeats or self.journal is None:
            return
        self._write({
            "t": "heartbeat",
            "worker": worker,
            "done": done,
            "total": total,
            "wall_time": time.time(),
        })

    # -- resilience events (executor retry/quarantine decisions) -----------

    def injected_fault(self, kind: str) -> None:
        """The fault plan injected one fault (chaos runs only)."""
        self.metrics.counter("faults.injected", kind=kind)

    def retry(
        self, task: int, host: int, attempt: int, error: str,
        backoff_seconds: float,
    ) -> None:
        """A failed task attempt is being re-run."""
        self.metrics.counter("faults.retries", kind=error)
        self.metrics.observe("faults.backoff_seconds", backoff_seconds)
        if self.journal is not None:
            self._write({
                "t": "retry",
                "task": task,
                "host": host,
                "attempt": attempt,
                "error": error,
                "backoff_seconds": backoff_seconds,
            })

    def quarantine(
        self, host: int, failures: int, redistributed: int
    ) -> None:
        """A persistently failing virtual host left the rotation."""
        self.metrics.counter("faults.quarantines")
        self.metrics.counter("faults.redistributed", redistributed)
        if self.journal is not None:
            self._write({
                "t": "quarantine",
                "host": host,
                "failures": failures,
                "redistributed": redistributed,
            })

    # -- post-hoc journaling (process-parallel paths) ----------------------

    def record_report(
        self,
        report,
        budget_hours: float,
        seed: Optional[int] = None,
    ) -> None:
        """Journal a finished report after the fact.

        Workers return plain reports (a recorder's file handle cannot
        be pickled across processes); the parent replays them into the
        journal so fleet and campaign runs are reconstructible too.
        The events already carry their ``new_anomaly_index`` re-tags,
        so anomaly records here need no ``event_index``.

        Accepts both Collie's ``SearchReport`` and the baselines'
        ``BaselineReport`` (which has no MFS bookkeeping — those fields
        journal as empty).
        """
        counter_mode = getattr(
            report, "counter_mode", getattr(report, "name", "?")
        )
        anomalies = getattr(report, "anomalies", [])
        skipped = getattr(report, "skipped_points", 0)
        self.run_start(
            report.subsystem_name, counter_mode,
            getattr(report, "use_mfs", False), budget_hours, seed,
        )
        self.ranking(getattr(report, "counter_ranking", []))
        for event in report.events:
            self.metrics.counter("search.experiments", kind=event.kind)
            self.metrics.counter("search.symptoms", symptom=event.symptom)
            if event.latency is not None:
                self.metrics.observe(
                    "search.latency_p99_us", event.latency["p99_us"]
                )
            interference = getattr(event, "interference", None)
            if interference is not None:
                self.metrics.observe("isolation.interference", interference)
            if self.coverage is not None:
                self.coverage.visit(event.workload)
            if self.journal is not None:
                self._write(experiment_record(event))
                if event.latency is not None:
                    self._write(latency_record(event))
        for index, mfs in enumerate(anomalies):
            self.anomaly(index, None, mfs)
        for _ in range(skipped):
            self.metrics.counter("search.skips")
            if self.coverage is not None:
                self.coverage.skip(None)
            if self.journal is not None:
                self._write({
                    "t": "skip", "time_seconds": report.elapsed_seconds,
                })
        self._run_end_totals(
            report.elapsed_seconds, report.experiments, skipped,
            len(anomalies), getattr(report, "counter_ranking", []),
        )

    # -- internals ---------------------------------------------------------

    def _progress_snapshot(self, time_seconds: float, state) -> None:
        progress_logger.info(
            "progress: %d experiments, %d anomalies, %d skipped, "
            "t=%.2f simulated hours",
            state.experiments, len(state.anomalies), state.skipped,
            time_seconds / 3600.0,
        )
        if self.journal is not None:
            self._write({
                "t": "snapshot",
                "time_seconds": time_seconds,
                "experiments": state.experiments,
                "anomalies": len(state.anomalies),
                "skipped": state.skipped,
                "metrics": self.metrics.snapshot(),
            })
            self._last_snapshot_experiments = state.experiments
            if self.coverage is not None:
                self._write(self.coverage.as_record(time_seconds))

    def _flush_spans(self) -> None:
        """Journal any profiler events not yet written (chunked)."""
        if self.profiler is None or self.journal is None:
            return
        events = self.profiler.events()
        pending = events[self._spans_flushed:]
        self._spans_flushed = len(events)
        for record in spans_records(pending):
            self._write(record)

    def close(self) -> None:
        if self.journal is not None:
            self._flush_spans()
            self.journal.close()
