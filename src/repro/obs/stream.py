"""Journal tail-following: consume an actively-written journal live.

Every read surface so far (``report``, ``coverage``, ``journal diff``,
the canary) re-reads a *finished* journal; the telemetry plane needs the
opposite — records as they land, while the writer is still appending.
:class:`JournalFollower` turns the journal's crash-safety contract into
a streaming one: the writer is line-buffered append-only, so at any
instant the file is a sequence of complete NDJSON lines plus at most one
partial line at the end (a torn tail, exactly the case
:func:`~repro.obs.journal.read_journal_prefix` tolerates post-hoc).  The
follower therefore:

* parses only newline-*terminated* lines — an unterminated tail stays
  pending (its bytes are not consumed) until the writer finishes it;
* never loses, duplicates or re-orders a record: :attr:`offset` is the
  byte position of the first unconsumed byte, advancing only past fully
  parsed lines, so polling is idempotent at every interleaving boundary
  and a new follower resumes exactly where a previous one stopped;
* raises ``ValueError`` on a newline-terminated line that is not valid
  JSON — a *completed* bad line is mid-file corruption, not a torn
  tail (the same distinction ``read_journal_prefix`` draws).

Followers read plain journals only: gzip journals are finished
artifacts (the canary corpus), never appended to.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator, Optional, Union


class JournalFollower:
    """Incremental reader of one actively-written journal file.

    ``offset`` resumes from a previous follower's position (byte
    offset, as reported by :attr:`offset` after any :meth:`poll`).  A
    not-yet-created journal polls as empty rather than erroring, so a
    follower can attach before the writer opens the file.
    """

    def __init__(
        self, path: Union[str, os.PathLike], offset: int = 0
    ) -> None:
        self.path = os.fspath(path)
        #: Byte position of the first unconsumed byte (resume token).
        self.offset = offset
        #: Records yielded so far (across every poll).
        self.records_seen = 0

    def poll(self) -> list[dict]:
        """Every record completed since the last poll (maybe empty).

        Reads from :attr:`offset`, parses the newline-terminated lines,
        and leaves any unterminated tail unconsumed for the next poll.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        # Everything up to the last newline is complete; the remainder
        # (possibly empty) is a pending tail the writer will finish.
        complete, newline, _pending = chunk.rpartition(b"\n")
        if not newline:
            return []
        records: list[dict] = []
        consumed = self.offset
        for raw in complete.split(b"\n"):
            consumed += len(raw) + 1
            line = raw.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"{self.path}: corrupt journal line at byte "
                    f"{consumed - len(raw) - 1}: {error}"
                ) from error
        self.offset = consumed
        self.records_seen += len(records)
        return records


def follow_journal(
    path: Union[str, os.PathLike],
    poll_interval: float = 0.05,
    stop: Optional[Callable[[], bool]] = None,
    offset: int = 0,
) -> Iterator[dict]:
    """Yield a journal's records live, as the writer appends them.

    Blocks between polls (``poll_interval`` seconds of real sleep), so
    this is a consumer-side loop — it never touches the writer, whose
    run stays bit-identical whether or not anyone is following.  The
    generator ends when ``stop()`` returns true *and* a final drain
    found nothing new, so a stop flag raised after the writer's last
    record never truncates the stream.  Without ``stop`` it follows
    forever (callers break out of the loop themselves).
    """
    follower = JournalFollower(path, offset=offset)
    while True:
        records = follower.poll()
        yield from records
        if not records and stop is not None and stop():
            return
        if not records:
            time.sleep(poll_interval)
