"""``repro top``: a live terminal dashboard over running journals.

Pure rendering: :func:`render_dashboard` turns a
:class:`~repro.obs.aggregate.CampaignAggregator` snapshot into a plain
ANSI text frame (no curses, no dependencies) — progress totals, the
per-worker liveness table, per-source rollups, per-chain SA rows, the
anomaly timeline tail, and optional drift columns against a baseline
journal (e.g. a canary corpus cell, read gzip-transparently).  The CLI
loop clears the screen between frames with the standard ``ESC[H ESC[2J``
sequence; ``--once`` renders a single frame with no escapes, which is
what scripts and the CI telemetry job consume.
"""

from __future__ import annotations

from typing import Optional

#: Home + clear-screen, emitted between live refreshes only.
CLEAR = "\x1b[H\x1b[2J"

#: Gated drift metrics: name → (snapshot totals key, higher is better).
_DRIFT_METRICS = (
    ("anomalies", "anomalies", True),
    ("time_to_first_anomaly_seconds",
     "time_to_first_anomaly_seconds", False),
    ("coverage_fraction", "coverage_fraction", True),
)


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _bar(done: int, total: int, width: int = 20) -> str:
    if total <= 0:
        return "-" * width
    filled = min(width, int(round(width * done / total)))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    snapshot: dict,
    chains: Optional[list] = None,
    baseline: Optional[dict] = None,
    baseline_path: Optional[str] = None,
) -> str:
    """One dashboard frame from an aggregator snapshot.

    ``chains`` is ``CampaignAggregator.chain_diagnostics()`` output;
    ``baseline`` a :func:`~repro.analysis.journaldiff.journal_metrics`
    dict to show drift against (both optional).
    """
    totals = snapshot.get("totals", {})
    lines = ["repro top — live campaign telemetry", ""]
    lines.append(
        f"  experiments {totals.get('experiments', 0):>8}    "
        f"anomalies {totals.get('anomalies', 0):>5}    "
        f"skips {totals.get('skips', 0):>6}    "
        f"runs {totals.get('complete_runs', 0)}/{totals.get('runs', 0)} "
        f"complete"
    )
    lines.append(
        f"  ttfa {_fmt(totals.get('time_to_first_anomaly_seconds')):>9}s   "
        f"coverage {_fmt(totals.get('coverage_fraction')):>7}    "
        f"cache hit {_fmt(totals.get('cache_hit_rate')):>6}    "
        f"latency p99 {_fmt(totals.get('latency_p99_us'))} us"
    )
    workers = snapshot.get("workers", ())
    if workers:
        alive = totals.get("workers_alive", 0)
        lines.append("")
        lines.append(
            f"  workers ({alive}/{len(workers)} alive, "
            f"stale after {snapshot.get('stale_after', 0):g}s)"
        )
        lines.append(
            f"    {'worker':<8} {'progress':<22} {'done':>6} "
            f"{'age':>8}  state"
        )
        for row in workers:
            state = "ALIVE" if row["alive"] else "STALE"
            lines.append(
                f"    {row['worker']:<8} "
                f"[{_bar(row['done'], row['total'])}] "
                f"{row['done']:>3}/{row['total']:<3}"
                f"{row['age_seconds']:>7.1f}s  {state}"
            )
    sources = snapshot.get("sources", ())
    if sources:
        lines.append("")
        lines.append(
            f"    {'journal':<32} {'records':>8} {'exps':>7} "
            f"{'anoms':>6} {'ttfa':>9} {'accept':>7}"
        )
        for row in sources:
            name = row["path"]
            if len(name) > 32:
                name = "…" + name[-31:]
            lines.append(
                f"    {name:<32} {row['records']:>8} "
                f"{row['experiments']:>7} {row['anomalies']:>6} "
                f"{_fmt(row['time_to_first_anomaly_seconds']):>9} "
                f"{_fmt(row['acceptance_rate']):>7}"
            )
            if row.get("error"):
                lines.append(f"      ! {row['error']}")
    chain_rows = [
        (path, diag) for path, diag in (chains or ())
        if diag.chain is not None or diag.decisions
    ]
    if chain_rows:
        lines.append("")
        lines.append(
            f"    {'chain':<7} {'t0':>8} {'decisions':>10} "
            f"{'accept':>7} {'exch':>5} {'ttfa':>9}  best dim"
        )
        for path, diag in chain_rows:
            label = "-" if diag.chain is None else str(diag.chain)
            lines.append(
                f"    {label:<7} {_fmt(diag.t0):>8} "
                f"{diag.decisions:>10} {_fmt(diag.acceptance):>7} "
                f"{diag.exchanges:>5} {_fmt(diag.ttfa):>9}  "
                f"{diag.best_dimension or '-'}"
            )
    timeline = snapshot.get("timeline", ())
    if timeline:
        lines.append("")
        lines.append("  anomaly timeline (most recent last)")
        for entry in timeline:
            chain = (
                f" chain {entry['chain']}" if entry.get("chain") is not None
                else ""
            )
            lines.append(
                f"    t={entry['time_seconds']:>9.1f}s  "
                f"{entry['symptom']:<18} "
                f"{entry['counter']}={entry['counter_value']:g}{chain}"
            )
    if baseline is not None:
        lines.append("")
        label = baseline_path or "baseline"
        lines.append(f"  drift vs {label}")
        for name, key, higher_better in _DRIFT_METRICS:
            base = baseline.get(name)
            live = totals.get(key)
            lines.append(
                f"    {name:<34} baseline {_fmt(base):>9}   "
                f"live {_fmt(live):>9}   {_drift_note(base, live, higher_better)}"
            )
    return "\n".join(lines) + "\n"


def _drift_note(base, live, higher_better: bool) -> str:
    if base is None or live is None:
        return "-"
    base = float(base)
    live = float(live)
    scale = max(abs(base), abs(live), 1e-12)
    delta = (live - base) / scale
    worse = -delta if higher_better else delta
    arrow = "=" if abs(delta) < 1e-9 else ("▼" if worse > 0 else "▲")
    return f"{delta:+.1%} {arrow}"


def load_baseline_metrics(path: str) -> dict:
    """``journal_metrics`` of a baseline journal (gzip-transparent).

    Accepts anything :func:`~repro.obs.journal.read_journal_prefix`
    reads — including committed canary corpus cells
    (``canary/corpus/*.jsonl.gz``) — tolerating a torn tail so a
    baseline can itself be a still-warm journal.
    """
    from repro.analysis.journaldiff import journal_metrics
    from repro.obs.journal import read_journal_prefix

    records, _tail = read_journal_prefix(path)
    return journal_metrics(records)
