"""Versioned schema of the run-journal records.

Every journal line is one JSON object carrying ``{"v": SCHEMA_VERSION,
"t": <record type>}`` plus the type's payload fields.  The validator is
deliberately hand-rolled (no jsonschema dependency): a field spec maps
field name → accepted Python types, which covers everything the journal
emits and keeps CI's validation step dependency-free.

Record types:

``run_start``
    One per search run: identity (subsystem, counter mode, MFS usage)
    plus budget and seed — everything needed to re-run the search.
``ranking``
    The §7.2 counter ranking: ordered counter list and the dispersion
    (std/mean over the probe set) each counter scored.
``experiment``
    One testbed experiment — the journal twin of a
    :class:`~repro.core.annealing.TraceEvent`, with the workload and
    full counter snapshot inlined.
``anomaly``
    A new MFS entered the anomaly set.  ``event_index`` points at the
    triggering experiment record (its 0-based position within the run),
    mirroring the in-memory retroactive re-tag.
``transition``
    One SA decision: ``improve`` / ``accept`` / ``reject`` /
    ``restart`` / ``reheat``, with temperature and energy delta.
``skip``
    A candidate point matched a known MFS and was skipped unmeasured.
``cache``
    One evaluation-cache lookup (phase + hit/miss).
``snapshot``
    Periodic progress: totals so far plus a metrics-registry dump.
``run_end``
    Authoritative totals of the finished run (the reconstruction
    prefers these over recomputing; their absence means a crashed run,
    which still reconstructs from the experiment records alone).
``fanout``
    Executor accounting of one multi-seed / fleet fan-out.
``retry``
    One re-run of a failed task attempt: which task, which virtual
    host the attempt was dispatched on, the attempt number, the
    failure kind (``crash``/``hang``/``timeout``/``transient``/...)
    and the deterministic backoff charged before the retry.
``quarantine``
    A persistently failing virtual host was taken out of rotation:
    its accumulated failure count and how many of its pending tasks
    were redistributed to healthy hosts.
``coverage``
    Periodic workload-space coverage: per-dimension occupancy over the
    4-D space plus totals (experiments, MFS skips, unique points).
``spans``
    A chunk of profiler span events, each ``[path, start, duration]``
    in profiler-relative wall-clock seconds.
``latency``
    Per-WR latency percentiles of one experiment (the summary of the
    measurement's analytic :class:`~repro.hardware.model.LatencyProfile`):
    p50/p90/p99/mean in microseconds, the deterministic ``baseline_us``
    floor, the p99-over-baseline ``inflation`` ratio the tail-latency
    trigger compares, and the named per-component breakdown.  Written
    immediately after its ``experiment`` record.
``isolation``
    One per isolation (adversarial-neighbor) run, right after
    ``run_start``: the pinned victim workload, its bandwidth share, and
    the deterministic alone-floor (solo throughput and p99) the
    victim-degradation verdicts compare against.  Every ``experiment``
    of such a run then carries the optional ``interference`` field
    (victim shared throughput over fair share).
``heartbeat``
    Executor liveness: one per completed fan-out task when live
    telemetry is on (``--export-metrics``), carrying the virtual worker
    slot the task ran on, the done/total progress, and — uniquely among
    journal records — a ``wall_time`` envelope field (``time.time()``).
    Wall clock is nondeterministic, so heartbeats are exactly the
    records the determinism contract excludes: every comparison surface
    (report reconstruction, ``journal diff``, the canary, resume)
    ignores them, and a telemetered journal with its heartbeat lines
    stripped is byte-identical to a bare run's journal.

Version 2 added the ``retry``/``quarantine`` types; version 3 added the
observatory's ``coverage``/``spans`` types plus the optional
``transition.mutated`` and ``skip.workload`` detail fields; version 4
added the ``latency`` type; version 5 added population-search support:
an optional integer ``chain`` field on every record (which SA chain of
a population run wrote it — absent on single-trajectory journals, so
those stay byte-compatible) and the ``exchange`` transition action
(parallel tempering adopted a replica from an adjacent ladder rung);
version 6 added the isolation domain: the ``isolation`` record type
and the optional ``experiment.interference`` field (both only written
by co-run searches, so solo journals stay byte-compatible with v5);
version 7 added the live-telemetry ``heartbeat`` record (only written
when an exporter/dashboard asks for liveness, so untelemetered
journals stay byte-compatible with v6).
Older journals remain valid (the validator accepts every version in
``SUPPORTED_VERSIONS``; optional fields are only type-checked when
present).
"""

from __future__ import annotations

from typing import Iterable, Optional

SCHEMA_VERSION = 7

#: Versions the validator (and readers) accept.
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5, 6, 7)

NUMBER = (int, float)
MAYBE_INT = (int, type(None))
MAYBE_DICT = (dict, type(None))

#: SA transition actions the schema admits.
TRANSITION_ACTIONS = (
    "improve", "accept", "reject", "restart", "reheat", "exchange",
)

#: Record type → {field: accepted types}.  Extra fields are allowed
#: (forward compatibility); missing or mistyped ones are errors.
RECORD_FIELDS: dict = {
    "run_start": {
        "subsystem": str,
        "counter_mode": str,
        "use_mfs": bool,
        "budget_hours": NUMBER,
        "seed": MAYBE_INT,
    },
    "ranking": {
        "counters": list,
        "dispersions": MAYBE_DICT,
    },
    "experiment": {
        "time_seconds": NUMBER,
        "counter": str,
        "counter_value": NUMBER,
        "symptom": str,
        "tags": list,
        "kind": str,
        "workload": dict,
        "counters": dict,
        "new_anomaly_index": MAYBE_INT,
    },
    "anomaly": {
        "index": int,
        "event_index": MAYBE_INT,
        "mfs": dict,
    },
    "transition": {
        "time_seconds": NUMBER,
        "action": str,
        "temperature": NUMBER,
        "delta": NUMBER,
    },
    "skip": {
        "time_seconds": NUMBER,
    },
    "cache": {
        "phase": str,
        "hit": bool,
    },
    "snapshot": {
        "time_seconds": NUMBER,
        "experiments": int,
        "anomalies": int,
        "skipped": int,
        "metrics": dict,
    },
    "run_end": {
        "elapsed_seconds": NUMBER,
        "experiments": int,
        "skipped": int,
        "anomalies": int,
        "counter_ranking": list,
        "metrics": MAYBE_DICT,
    },
    "fanout": {
        "tasks": int,
        "workers": int,
        "wall_seconds": NUMBER,
        "busy_seconds": NUMBER,
        "fell_back_serial": bool,
    },
    "retry": {
        "task": int,
        "host": int,
        "attempt": int,
        "error": str,
        "backoff_seconds": NUMBER,
    },
    "quarantine": {
        "host": int,
        "failures": int,
        "redistributed": int,
    },
    "coverage": {
        "time_seconds": NUMBER,
        "experiments": int,
        "skips": int,
        "unique_points": int,
        "dimensions": dict,
    },
    "spans": {
        "events": list,
    },
    "latency": {
        "time_seconds": NUMBER,
        "p50_us": NUMBER,
        "p90_us": NUMBER,
        "p99_us": NUMBER,
        "mean_us": NUMBER,
        "baseline_us": NUMBER,
        "inflation": NUMBER,
        "components": dict,
        "tags": list,
    },
    "isolation": {
        "victim": dict,
        "victim_share": NUMBER,
        "alone_gbps": NUMBER,
        "alone_p99_us": NUMBER,
    },
    "heartbeat": {
        "worker": int,
        "done": int,
        "total": int,
        "wall_time": NUMBER,
    },
}

#: Record type → {field: accepted types} for fields that MAY appear.
#: Absent is fine (older writers); present-but-mistyped is an error.
OPTIONAL_RECORD_FIELDS: dict = {
    "transition": {"mutated": list},
    "skip": {"workload": dict},
    "experiment": {"interference": NUMBER},
}


def validate_record(record, line: Optional[int] = None) -> list[str]:
    """Errors in one journal record (empty list = valid)."""
    where = f"line {line}: " if line is not None else ""
    if not isinstance(record, dict):
        return [f"{where}record is not an object"]
    errors = []
    version = record.get("v")
    if version not in SUPPORTED_VERSIONS:
        errors.append(
            f"{where}unsupported schema version {version!r} "
            f"(expected one of {SUPPORTED_VERSIONS})"
        )
    kind = record.get("t")
    fields = RECORD_FIELDS.get(kind)
    if fields is None:
        errors.append(f"{where}unknown record type {kind!r}")
        return errors
    for name, accepted in fields.items():
        if name not in record:
            errors.append(f"{where}{kind}: missing field {name!r}")
            continue
        errors.extend(_check_field(record, kind, name, accepted, where))
    for name, accepted in OPTIONAL_RECORD_FIELDS.get(kind, {}).items():
        if name in record:
            errors.extend(_check_field(record, kind, name, accepted, where))
    # ``chain`` (v5) may appear on any record type a population chain
    # writes; validated generically so new record types inherit it.
    if "chain" in record:
        errors.extend(_check_field(record, kind, "chain", int, where))
    if kind == "transition":
        action = record.get("action")
        if isinstance(action, str) and action not in TRANSITION_ACTIONS:
            errors.append(
                f"{where}transition: unknown action {action!r} "
                f"(expected one of {', '.join(TRANSITION_ACTIONS)})"
            )
    return errors


def validate_journal(records: Iterable[dict]) -> list[str]:
    """Errors across a whole journal (1-based line numbers)."""
    errors: list[str] = []
    count = 0
    for line, record in enumerate(records, 1):
        count = line
        errors.extend(validate_record(record, line=line))
    if count == 0:
        errors.append("journal is empty")
    return errors


def _check_field(record, kind, name, accepted, where) -> list[str]:
    value = record[name]
    # bool is an int subclass; don't let True satisfy an int field.
    if isinstance(value, bool) and bool not in (
        accepted if isinstance(accepted, tuple) else (accepted,)
    ):
        return [
            f"{where}{kind}: field {name!r} is bool, expected "
            f"{_describe_types(accepted)}"
        ]
    if not isinstance(value, accepted):
        return [
            f"{where}{kind}: field {name!r} is "
            f"{type(value).__name__}, expected "
            f"{_describe_types(accepted)}"
        ]
    return []


def _describe_types(accepted) -> str:
    if isinstance(accepted, tuple):
        return " or ".join(t.__name__ for t in accepted)
    return accepted.__name__
