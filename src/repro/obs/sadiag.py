"""Simulated-annealing diagnostics from a run journal.

Folds the recorder's ``transition`` stream (improve / accept / reject /
restart / reheat) into the numbers behind the paper's Fig. 5 ablation:

* per-temperature-epoch acceptance rates — is the Metropolis schedule
  actually cooling, or is the search a random walk?
* per-dimension mutation effectiveness — which mutated dimension's
  moves improve the objective (schema-v3 journals label transitions
  with the dimensions the candidate mutation changed);
* time-to-first-anomaly — the single highest-leverage search metric,
  computed from ``experiment`` records so it also works for baselines
  that never record transitions.

Everything here is a pure fold over journal records; nothing touches
the search.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

#: Actions that participate in acceptance-rate denominators.  restart
#: and reheat are schedule events, not Metropolis decisions.
DECISION_ACTIONS = ("improve", "accept", "reject")

HEALTHY = "healthy"


@dataclasses.dataclass
class EpochStats:
    """One temperature epoch: consecutive transitions at one temperature."""

    temperature: float
    improve: int = 0
    accept: int = 0
    reject: int = 0
    restart: int = 0
    reheat: int = 0

    @property
    def decisions(self) -> int:
        return self.improve + self.accept + self.reject

    @property
    def acceptance_rate(self) -> Optional[float]:
        if self.decisions == 0:
            return None
        return (self.improve + self.accept) / self.decisions


@dataclasses.dataclass
class DimensionStats:
    """Mutation outcomes attributed to one mutated dimension."""

    dimension: str
    mutations: int = 0
    improvements: int = 0
    accepts: int = 0
    rejects: int = 0

    @property
    def effectiveness(self) -> Optional[float]:
        if self.mutations == 0:
            return None
        return self.improvements / self.mutations


def _transitions(records):
    for record in records:
        if record.get("t") == "transition":
            yield record


def fold_epochs(records) -> list[EpochStats]:
    """Temperature epochs, in journal order."""
    epochs: list[EpochStats] = []
    for record in _transitions(records):
        temperature = float(record["temperature"])
        if not epochs or epochs[-1].temperature != temperature:
            epochs.append(EpochStats(temperature=temperature))
        epoch = epochs[-1]
        action = record["action"]
        setattr(epoch, action, getattr(epoch, action) + 1)
    return epochs


def acceptance_rate(records) -> Optional[float]:
    """Overall Metropolis acceptance rate (None without decisions)."""
    accepted = decided = 0
    for record in _transitions(records):
        action = record["action"]
        if action in DECISION_ACTIONS:
            decided += 1
            if action != "reject":
                accepted += 1
    return accepted / decided if decided else None


def mutation_effectiveness(records) -> list[DimensionStats]:
    """Per-dimension mutation outcomes, most effective first.

    Requires schema-v3 ``mutated`` labels on transition records; older
    journals yield an empty list.  A transition that mutated two
    dimensions credits (or debits) both.
    """
    stats: dict[str, DimensionStats] = {}
    for record in _transitions(records):
        action = record["action"]
        if action not in DECISION_ACTIONS:
            continue
        for dimension in record.get("mutated", ()):
            entry = stats.setdefault(dimension, DimensionStats(dimension))
            entry.mutations += 1
            if action == "improve":
                entry.improvements += 1
            elif action == "accept":
                entry.accepts += 1
            else:
                entry.rejects += 1
    return sorted(
        stats.values(),
        key=lambda entry: (-(entry.effectiveness or 0.0), entry.dimension),
    )


def time_to_first_anomaly(records) -> Optional[float]:
    """Simulated seconds until the first anomalous experiment.

    Uses ``experiment`` records (symptom != healthy), so it works for
    any recorded approach — Collie, baselines, replays — whether or
    not transitions were journaled.  None when the run stayed healthy.
    """
    for record in records:
        if (
            record.get("t") == "experiment"
            and record.get("symptom", HEALTHY) != HEALTHY
        ):
            return float(record["time_seconds"])
    return None


def time_to_first_anomaly_by_symptom(records) -> dict:
    """Symptom → simulated seconds until its first anomalous experiment.

    Splits TTFA by anomaly class, so a search that finds pause frames in
    minutes but needs hours for its first latency inflation shows both
    numbers instead of only the earlier one.  Symptoms the run never
    exhibited are simply absent.
    """
    first: dict[str, float] = {}
    for record in records:
        if record.get("t") != "experiment":
            continue
        symptom = record.get("symptom", HEALTHY)
        if symptom != HEALTHY and symptom not in first:
            first[symptom] = float(record["time_seconds"])
    return dict(sorted(first.items(), key=lambda item: item[1]))


def render_sa_diagnostics(records) -> str:
    """Terminal rendering of the full SA diagnostic fold."""
    lines = ["simulated-annealing diagnostics"]
    ttfa = time_to_first_anomaly(records)
    lines.append(
        "  time to first anomaly: "
        + (f"{ttfa:.0f}s simulated" if ttfa is not None else "never")
    )
    by_symptom = time_to_first_anomaly_by_symptom(records)
    if len(by_symptom) > 1:
        for symptom, seconds in by_symptom.items():
            lines.append(f"    {symptom}: {seconds:.0f}s simulated")
    overall = acceptance_rate(records)
    if overall is not None:
        lines.append(f"  overall acceptance rate: {overall:.1%}")
    epochs = fold_epochs(records)
    if epochs:
        lines.append("  temperature epochs:")
        lines.append(
            f"    {'temp':>8} {'improve':>8} {'accept':>7} {'reject':>7} "
            f"{'restart':>8} {'reheat':>7} {'accept %':>9}"
        )
        for epoch in epochs:
            rate = epoch.acceptance_rate
            lines.append(
                f"    {epoch.temperature:>8.4f} {epoch.improve:>8d} "
                f"{epoch.accept:>7d} {epoch.reject:>7d} {epoch.restart:>8d} "
                f"{epoch.reheat:>7d} "
                + (f"{rate:>8.1%}" if rate is not None else f"{'—':>9}")
            )
    dimensions = mutation_effectiveness(records)
    if dimensions:
        lines.append("  mutation effectiveness by dimension:")
        lines.append(
            f"    {'dimension':<14} {'mutations':>9} {'improved':>9} "
            f"{'accepted':>9} {'rejected':>9} {'improve %':>10}"
        )
        for entry in dimensions:
            effectiveness = entry.effectiveness
            lines.append(
                f"    {entry.dimension:<14} {entry.mutations:>9d} "
                f"{entry.improvements:>9d} {entry.accepts:>9d} "
                f"{entry.rejects:>9d} "
                + (
                    f"{effectiveness:>9.1%}"
                    if effectiveness is not None else f"{'—':>10}"
                )
            )
    if len(lines) == 2:
        lines.append("  no transition records in this journal")
    return "\n".join(lines)
