"""Simulated-annealing diagnostics from a run journal.

Folds the recorder's ``transition`` stream (improve / accept / reject /
restart / reheat) into the numbers behind the paper's Fig. 5 ablation:

* per-temperature-epoch acceptance rates — is the Metropolis schedule
  actually cooling, or is the search a random walk?
* per-dimension mutation effectiveness — which mutated dimension's
  moves improve the objective (schema-v3 journals label transitions
  with the dimensions the candidate mutation changed);
* time-to-first-anomaly — the single highest-leverage search metric,
  computed from ``experiment`` records so it also works for baselines
  that never record transitions.

Population journals (schema v5) interleave N chains' records, each
stamped with its chain id; :func:`per_chain_diagnostics` splits the
acceptance rate, mutation effectiveness and TTFA per chain — and, for
parallel tempering, per ladder rung (a chain's rung is the hottest
temperature its transitions ever recorded, i.e. its ``t0``).  Journals
from before the population driver carry no stamps and fold into a
single unnamed chain, so every caller degrades gracefully.

Everything here is a pure fold over journal records; nothing touches
the search.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

#: Actions that participate in acceptance-rate denominators.  restart
#: and reheat are schedule events, not Metropolis decisions.
DECISION_ACTIONS = ("improve", "accept", "reject")

HEALTHY = "healthy"


@dataclasses.dataclass
class EpochStats:
    """One temperature epoch: consecutive transitions at one temperature."""

    temperature: float
    improve: int = 0
    accept: int = 0
    reject: int = 0
    restart: int = 0
    reheat: int = 0
    exchange: int = 0  #: replica swaps adopted (tempering runs only).

    @property
    def decisions(self) -> int:
        return self.improve + self.accept + self.reject

    @property
    def acceptance_rate(self) -> Optional[float]:
        if self.decisions == 0:
            return None
        return (self.improve + self.accept) / self.decisions


@dataclasses.dataclass
class DimensionStats:
    """Mutation outcomes attributed to one mutated dimension."""

    dimension: str
    mutations: int = 0
    improvements: int = 0
    accepts: int = 0
    rejects: int = 0

    @property
    def effectiveness(self) -> Optional[float]:
        if self.mutations == 0:
            return None
        return self.improvements / self.mutations


def _transitions(records):
    for record in records:
        if record.get("t") == "transition":
            yield record


def fold_epochs(records) -> list[EpochStats]:
    """Temperature epochs, in journal order."""
    epochs: list[EpochStats] = []
    for record in _transitions(records):
        temperature = float(record["temperature"])
        if not epochs or epochs[-1].temperature != temperature:
            epochs.append(EpochStats(temperature=temperature))
        epoch = epochs[-1]
        action = record["action"]
        setattr(epoch, action, getattr(epoch, action) + 1)
    return epochs


def acceptance_rate(records) -> Optional[float]:
    """Overall Metropolis acceptance rate (None without decisions)."""
    accepted = decided = 0
    for record in _transitions(records):
        action = record["action"]
        if action in DECISION_ACTIONS:
            decided += 1
            if action != "reject":
                accepted += 1
    return accepted / decided if decided else None


def mutation_effectiveness(records) -> list[DimensionStats]:
    """Per-dimension mutation outcomes, most effective first.

    Requires schema-v3 ``mutated`` labels on transition records; older
    journals yield an empty list.  A transition that mutated two
    dimensions credits (or debits) both.
    """
    stats: dict[str, DimensionStats] = {}
    for record in _transitions(records):
        action = record["action"]
        if action not in DECISION_ACTIONS:
            continue
        for dimension in record.get("mutated", ()):
            entry = stats.setdefault(dimension, DimensionStats(dimension))
            entry.mutations += 1
            if action == "improve":
                entry.improvements += 1
            elif action == "accept":
                entry.accepts += 1
            else:
                entry.rejects += 1
    return sorted(
        stats.values(),
        key=lambda entry: (-(entry.effectiveness or 0.0), entry.dimension),
    )


def split_by_chain(records) -> dict:
    """Chain id → that chain's records, in first-appearance order.

    Population journals (schema v5) stamp every record with its chain;
    journals from before the population driver carry no stamps, so the
    whole journal folds into a single ``{None: records}`` stream and
    every per-chain caller degrades gracefully to whole-run numbers.
    """
    streams: dict = {}
    for record in records:
        streams.setdefault(record.get("chain"), []).append(record)
    return streams


@dataclasses.dataclass
class ChainDiagnostics:
    """One population chain's slice of the SA diagnostic fold."""

    chain: Optional[int]  #: None for unstamped (pre-population) journals.
    t0: Optional[float]  #: hottest transition temperature = ladder rung.
    decisions: int
    acceptance: Optional[float]
    exchanges: int  #: replica swaps this chain adopted (tempering).
    dimensions: list  #: per-chain :class:`DimensionStats`, best first.
    ttfa: Optional[float]

    @property
    def best_dimension(self) -> Optional[str]:
        return self.dimensions[0].dimension if self.dimensions else None


def per_chain_diagnostics(records) -> list[ChainDiagnostics]:
    """Acceptance, effectiveness, exchanges and TTFA split per chain.

    For parallel-tempering journals the ``t0`` column identifies the
    ladder rung (every chain's schedule starts at its rung, so the
    hottest temperature it ever journaled *is* the rung).  Unstamped
    journals yield a single entry with ``chain=None`` holding the same
    numbers the whole-journal folds report.
    """
    diagnostics: list[ChainDiagnostics] = []
    for chain, stream in split_by_chain(records).items():
        transitions = list(_transitions(stream))
        decided = sum(
            1 for r in transitions if r["action"] in DECISION_ACTIONS
        )
        diagnostics.append(ChainDiagnostics(
            chain=chain,
            t0=max(
                (float(r["temperature"]) for r in transitions),
                default=None,
            ),
            decisions=decided,
            acceptance=acceptance_rate(transitions),
            exchanges=sum(
                1 for r in transitions if r["action"] == "exchange"
            ),
            dimensions=mutation_effectiveness(transitions),
            ttfa=time_to_first_anomaly(stream),
        ))
    return diagnostics


def time_to_first_anomaly(records) -> Optional[float]:
    """Simulated seconds until the first anomalous experiment.

    Uses ``experiment`` records (symptom != healthy), so it works for
    any recorded approach — Collie, baselines, replays — whether or
    not transitions were journaled.  None when the run stayed healthy.
    """
    for record in records:
        if (
            record.get("t") == "experiment"
            and record.get("symptom", HEALTHY) != HEALTHY
        ):
            return float(record["time_seconds"])
    return None


def time_to_first_anomaly_by_symptom(records) -> dict:
    """Symptom → simulated seconds until its first anomalous experiment.

    Splits TTFA by anomaly class, so a search that finds pause frames in
    minutes but needs hours for its first latency inflation shows both
    numbers instead of only the earlier one.  Symptoms the run never
    exhibited are simply absent.
    """
    first: dict[str, float] = {}
    for record in records:
        if record.get("t") != "experiment":
            continue
        symptom = record.get("symptom", HEALTHY)
        if symptom != HEALTHY and symptom not in first:
            first[symptom] = float(record["time_seconds"])
    return dict(sorted(first.items(), key=lambda item: item[1]))


def worst_interference(records) -> Optional[tuple]:
    """``(interference, time_seconds)`` of the worst co-run experiment.

    Isolation journals (schema v6) stamp every co-run experiment with
    the victim's interference (shared throughput over fair share); the
    minimum is the search's deepest cut into the victim.  ``None`` for
    solo journals.  Non-finite values (the zero-fair-share sentinel)
    are ignored — they mark an undefined comparison, not a deep cut.
    """
    worst: Optional[tuple] = None
    for record in records:
        if record.get("t") != "experiment":
            continue
        value = record.get("interference")
        if value is None:
            continue
        value = float(value)
        if not math.isfinite(value):
            continue
        if worst is None or value < worst[0]:
            worst = (value, float(record["time_seconds"]))
    return worst


def render_sa_diagnostics(records) -> str:
    """Terminal rendering of the full SA diagnostic fold."""
    lines = ["simulated-annealing diagnostics"]
    ttfa = time_to_first_anomaly(records)
    lines.append(
        "  time to first anomaly: "
        + (f"{ttfa:.0f}s simulated" if ttfa is not None else "never")
    )
    by_symptom = time_to_first_anomaly_by_symptom(records)
    if len(by_symptom) > 1:
        for symptom, seconds in by_symptom.items():
            lines.append(f"    {symptom}: {seconds:.0f}s simulated")
    interference = worst_interference(records)
    if interference is not None:
        lines.append(
            f"  worst victim interference: {interference[0]:.2f} of fair "
            f"share at {interference[1]:.0f}s simulated"
        )
    prelude = len(lines)
    overall = acceptance_rate(records)
    if overall is not None:
        lines.append(f"  overall acceptance rate: {overall:.1%}")
    epochs = fold_epochs(records)
    if epochs:
        lines.append("  temperature epochs:")
        lines.append(
            f"    {'temp':>8} {'improve':>8} {'accept':>7} {'reject':>7} "
            f"{'restart':>8} {'reheat':>7} {'accept %':>9}"
        )
        for epoch in epochs:
            rate = epoch.acceptance_rate
            lines.append(
                f"    {epoch.temperature:>8.4f} {epoch.improve:>8d} "
                f"{epoch.accept:>7d} {epoch.reject:>7d} {epoch.restart:>8d} "
                f"{epoch.reheat:>7d} "
                + (f"{rate:>8.1%}" if rate is not None else f"{'—':>9}")
            )
    dimensions = mutation_effectiveness(records)
    if dimensions:
        lines.append("  mutation effectiveness by dimension:")
        lines.append(
            f"    {'dimension':<14} {'mutations':>9} {'improved':>9} "
            f"{'accepted':>9} {'rejected':>9} {'improve %':>10}"
        )
        for entry in dimensions:
            effectiveness = entry.effectiveness
            lines.append(
                f"    {entry.dimension:<14} {entry.mutations:>9d} "
                f"{entry.improvements:>9d} {entry.accepts:>9d} "
                f"{entry.rejects:>9d} "
                + (
                    f"{effectiveness:>9.1%}"
                    if effectiveness is not None else f"{'—':>10}"
                )
            )
    if len(lines) == prelude:
        lines.append("  no transition records in this journal")
    chains = per_chain_diagnostics(records)
    if any(entry.chain is not None for entry in chains):
        lines.append("  per-chain split:")
        lines.append(
            f"    {'chain':>5} {'t0':>8} {'decisions':>9} {'accept %':>9} "
            f"{'exchanges':>9} {'ttfa':>8}  best dimension"
        )
        for entry in chains:
            chain = "—" if entry.chain is None else str(entry.chain)
            t0 = f"{entry.t0:.4f}" if entry.t0 is not None else "—"
            accept = (
                f"{entry.acceptance:.1%}"
                if entry.acceptance is not None else "—"
            )
            ttfa = f"{entry.ttfa:.0f}s" if entry.ttfa is not None else "never"
            lines.append(
                f"    {chain:>5} {t0:>8} {entry.decisions:>9d} "
                f"{accept:>9} {entry.exchanges:>9d} {ttfa:>8}  "
                + (entry.best_dimension or "—")
            )
    return "\n".join(lines)
