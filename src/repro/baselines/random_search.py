"""Random input generation: the black-box fuzzing baseline.

"One naive approach is to generate random input in the search space.
This approach is already much better than existing tests because the
design of our search space is more comprehensive than that in existing
tools" (§5) — and indeed it finds the simple anomalies quickly, but, as
Figure 4 shows, plateaus well below Collie.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.annealing import SearchState, TraceEvent
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.subsystems import Subsystem, get_subsystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache
    from repro.obs.recorder import FlightRecorder


@dataclasses.dataclass
class BaselineReport:
    """Search log of a baseline run (same bookkeeping as Collie's)."""

    name: str
    subsystem_name: str
    events: list[TraceEvent]
    experiments: int
    elapsed_seconds: float

    def first_hit_times(self) -> dict:
        hits: dict = {}
        for event in self.events:
            if event.symptom == "healthy":
                continue
            for tag in event.tags:
                hits.setdefault(tag, event.time_seconds)
        return hits

    def found_tags(self) -> list[str]:
        return sorted(self.first_hit_times())


#: Points pre-sampled per pre-solve burst in ``batch_probes`` mode.
PROBE_CHUNK = 16


class RandomSearch:
    """Uniform random sampling of the search space under a time budget."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        budget_hours: float = 10.0,
        seed: int = 0,
        noise: float = 0.02,
        cache: Optional["EvalCache"] = None,
        batch: bool = True,
        batch_probes: bool = False,
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.space = SearchSpace.for_subsystem(subsystem)
        self.clock = SimulatedClock(budget_hours * 3600.0)
        self.budget_hours = budget_hours
        self.seed = seed
        #: Optional flight recorder; purely observational (a recorded
        #: run is bit-identical to an unrecorded one).
        self.recorder = recorder
        metrics = recorder.metrics if recorder is not None else None
        profiler = recorder.profiler if recorder is not None else None
        self.testbed = Testbed(
            subsystem, clock=self.clock, noise=noise, cache=cache,
            batch=batch, metrics=metrics, profiler=profiler,
        )
        self.monitor = AnomalyMonitor(subsystem, metrics=metrics)
        self.rng = np.random.default_rng(seed)
        #: Pre-sample PROBE_CHUNK points at a time and pre-solve them as
        #: one batch.  Deterministic per seed but a different RNG
        #: interleaving than the scalar sample/evaluate alternation, so
        #: off by default (see ``repro.core.batcheval``).
        self.batch_probes = batch_probes

    def run(self) -> BaselineReport:
        recorder = self.recorder
        if recorder is not None:
            recorder.run_start(
                self.subsystem.name, "random", False,
                self.budget_hours, self.seed, space=self.space,
            )
        state = SearchState()
        pending: list = []
        batch_probes = self.batch_probes and self.testbed.batch_enabled
        while not self.clock.expired:
            if batch_probes:
                if not pending:
                    pending = [
                        self.space.random(self.rng)
                        for _ in range(PROBE_CHUNK)
                    ]
                    self.testbed.presolve(pending)
                workload = pending.pop(0)
            else:
                workload = self.space.random(self.rng)
            result = self.testbed.run(workload, rng=self.rng)
            verdict = self.monitor.classify(result.measurement)
            event = TraceEvent(
                time_seconds=result.finished_at,
                counter="",  # random sampling follows no signal
                counter_value=0.0,
                symptom=verdict.symptom,
                tags=result.measurement.tags,
                workload=workload,
                kind="search",
                # Snapshot kept for Figure 6: random does not *use*
                # the counters, but the paper plots what it saw.
                counters=dict(result.measurement.counters),
            )
            state.events.append(event)
            state.experiments += 1
            if recorder is not None:
                recorder.experiment(event, state)
        if recorder is not None:
            recorder._run_end_totals(
                self.clock.now, state.experiments, 0, 0, [],
            )
        return BaselineReport(
            name="random",
            subsystem_name=self.subsystem.name,
            events=state.events,
            experiments=state.experiments,
            elapsed_seconds=self.clock.now,
        )
