"""A genetic-algorithm search: one of §8's "other search algorithms".

"There are many other search algorithms alternatives that can be
leveraged... Integrating more search algorithms into Collie is another
interesting direction to explore."  This baseline evolves a population
of workloads: fitness is the driven counter (diagnostic high / generally
extreme), parents are tournament-selected, children mix their parents'
dimensions (uniform crossover) and mutate through the same single-step
operator SA uses.  MFS handling matches Collie's for fairness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.baselines.random_search import BaselineReport
from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.annealing import SearchSignal, TraceEvent
from repro.core.mfs import MFSExtractor, MinimalFeatureSet, match_any
from repro.core.monitor import AnomalyMonitor
from repro.core.space import (
    CATEGORICAL_DIMENSIONS,
    ORDERED_DIMENSIONS,
    SearchSpace,
)
from repro.hardware.counters import DIAGNOSTIC_COUNTERS
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import WorkloadDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache


class GeneticSearch:
    """Population-based counter maximisation with MFS support."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        budget_hours: float = 10.0,
        seed: int = 0,
        population: int = 16,
        tournament: int = 3,
        mutation_rate: float = 0.3,
        use_mfs: bool = True,
        noise: float = 0.02,
        cache: Optional["EvalCache"] = None,
    ) -> None:
        if population < 4:
            raise ValueError("population must be at least 4")
        if not 2 <= tournament <= population:
            raise ValueError("tournament size must fit the population")
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.space = SearchSpace.for_subsystem(subsystem)
        self.clock = SimulatedClock(budget_hours * 3600.0)
        self.testbed = Testbed(
            subsystem, clock=self.clock, noise=noise, cache=cache
        )
        self.monitor = AnomalyMonitor(subsystem)
        self.rng = np.random.default_rng(seed)
        self.population_size = population
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self.use_mfs = use_mfs
        self.anomalies: list[MinimalFeatureSet] = []
        self.events: list[TraceEvent] = []

    # -- evaluation ----------------------------------------------------------

    def _measure(self, workload, signal, kind="search") -> float:
        result = self.testbed.run(workload, rng=self.rng, phase=kind)
        measurement = result.measurement
        verdict = self.monitor.classify(measurement)
        self.events.append(
            TraceEvent(
                time_seconds=result.finished_at,
                counter=signal.counter,
                counter_value=signal.value(measurement),
                symptom=verdict.symptom,
                tags=measurement.tags,
                workload=workload,
                kind=kind,
                counters=dict(measurement.counters),
            )
        )
        if (
            self.use_mfs
            and verdict.is_anomalous
            and kind == "search"
            and match_any(self.anomalies, workload) is None
        ):
            self._extract(workload, verdict.symptom, signal)
        return signal.value(measurement)

    def _extract(self, workload, symptom, signal) -> None:
        def probe(candidate: WorkloadDescriptor) -> str:
            if self.clock.expired:
                return "healthy"
            self._measure(candidate, signal, kind="mfs")
            return self.events[-1].symptom

        mfs = MFSExtractor(self.space, probe, probes_per_dimension=2).construct(
            workload, symptom, at_seconds=self.clock.now,
            known=self.anomalies,
        )
        if mfs is not None:
            self.anomalies.append(mfs)

    # -- genetics ------------------------------------------------------------

    def _crossover(
        self, mother: WorkloadDescriptor, father: WorkloadDescriptor
    ) -> WorkloadDescriptor:
        """Uniform crossover over the search dimensions."""
        raw = self.space._to_raw(mother)
        other = self.space._to_raw(father)
        for dimension in ORDERED_DIMENSIONS + CATEGORICAL_DIMENSIONS:
            if self.rng.random() < 0.5:
                raw[dimension] = other[dimension]
        if self.rng.random() < 0.5:
            raw["msg_sizes_bytes"] = other["msg_sizes_bytes"]
        return self.space.coerce(raw)

    def _select(self, scored: list) -> WorkloadDescriptor:
        """Tournament selection (higher fitness wins)."""
        indices = self.rng.choice(
            len(scored), size=self.tournament, replace=False
        )
        best = max(indices, key=lambda i: scored[i][0])
        return scored[best][1]

    # -- the loop -------------------------------------------------------------

    def run(self) -> BaselineReport:
        signals = [SearchSignal(name) for name in DIAGNOSTIC_COUNTERS]
        per_signal = self.clock.budget_seconds / len(signals)
        for index, signal in enumerate(signals):
            deadline = min(
                (index + 1) * per_signal, self.clock.budget_seconds
            )
            self._evolve(signal, deadline)
            if self.clock.expired:
                break
        return BaselineReport(
            name="genetic",
            subsystem_name=self.subsystem.name,
            events=self.events,
            experiments=len(self.events),
            elapsed_seconds=self.clock.now,
        )

    def _fresh(self) -> WorkloadDescriptor:
        point = self.space.random(self.rng)
        for _ in range(10):
            if not (self.use_mfs and match_any(self.anomalies, point)):
                break
            point = self.space.random(self.rng)
        return point

    def _evolve(self, signal: SearchSignal, deadline: float) -> None:
        scored: list = []
        for _ in range(self.population_size):
            if self.clock.now >= deadline or self.clock.expired:
                return
            individual = self._fresh()
            scored.append((self._measure(individual, signal), individual))

        while self.clock.now < deadline and not self.clock.expired:
            child = self._crossover(
                self._select(scored), self._select(scored)
            )
            if self.rng.random() < self.mutation_rate:
                child = self.space.mutate(child, self.rng)
            if self.use_mfs and match_any(self.anomalies, child):
                child = self._fresh()
            fitness = self._measure(child, signal)
            # Steady-state replacement: the child replaces the current
            # weakest member if it beats it.
            weakest = min(range(len(scored)), key=lambda i: scored[i][0])
            if fitness > scored[weakest][0]:
                scored[weakest] = (fitness, child)
