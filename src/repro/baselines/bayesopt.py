"""Bayesian Optimization baseline (paper §7.2, following ref. [31]).

A Gaussian-process surrogate with an RBF kernel over an encoded workload
vector, expected-improvement acquisition over a random candidate pool,
and — for fairness, exactly as the paper does — the same MFS enhancement
Collie uses (known anomaly regions are skipped and extracted).

The paper's observation, which this implementation reproduces, is that
BO struggles here because counter values jump discontinuously across
the discrete dimensions (QP type flips change everything), violating the
GP's smoothness prior (§7.2).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.baselines.random_search import BaselineReport
from repro.cluster.clock import SimulatedClock
from repro.cluster.testbed import Testbed
from repro.core.annealing import SearchSignal, TraceEvent
from repro.core.mfs import MFSExtractor, MinimalFeatureSet, match_any
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.counters import DIAGNOSTIC_COUNTERS
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import Colocation, Direction, WorkloadDescriptor
from repro.verbs.constants import Opcode, QPType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.evalcache import EvalCache

#: Observations beyond this are dropped (oldest first) to bound the
#: O(n^3) GP fit.
MAX_OBSERVATIONS = 120

#: Candidate pool size per acquisition round.
CANDIDATE_POOL = 192


def encode_workload(workload: WorkloadDescriptor) -> np.ndarray:
    """The paper-faithful ref-[31] encoding: one continuous box axis per
    parameter, linearly normalised raw values, categoricals as ordinals.

    The fmfn/BayesianOptimization package the paper cites optimises over
    a continuous box; discrete transport choices become artificial
    ordinals and the huge raw ranges (1…16384 QPs, 64B…4MB messages)
    compress most of the ladder into a sliver of the axis.  These are
    precisely the pathologies behind the paper's observation that "BO is
    not able to optimize the corresponding counters" — §7.2's sudden
    counter changes across discrete dimensions.
    """
    qp_ordinal = (QPType.RC, QPType.UC, QPType.UD).index(workload.qp_type)
    op_ordinal = (Opcode.SEND, Opcode.WRITE, Opcode.READ).index(
        workload.opcode
    ) if workload.opcode in (Opcode.SEND, Opcode.WRITE, Opcode.READ) else 0
    return np.array(
        [
            qp_ordinal / 2.0,
            op_ordinal / 2.0,
            1.0 if workload.direction is Direction.BIDIRECTIONAL else 0.0,
            1.0 if workload.colocation is Colocation.MIXED_LOOPBACK else 0.0,
            1.0 if workload.src_device.startswith("gpu") else (
                0.5 if workload.src_device != "numa0" else 0.0
            ),
            1.0 if workload.dst_device.startswith("gpu") else (
                0.5 if workload.dst_device != "numa0" else 0.0
            ),
            workload.mtu / 4096.0,
            workload.num_qps / 16384.0,
            workload.wqe_batch / 128.0,
            workload.sge_per_wqe / 8.0,
            workload.wq_depth / 4096.0,
            workload.mrs_per_qp / 1024.0,
            workload.mr_bytes / 4194304.0,
            workload.avg_msg_bytes / 4194304.0,
        ]
    )


def encode_workload_modern(workload: WorkloadDescriptor) -> np.ndarray:
    """A modernised encoding: one-hot categoricals, log-scaled ladders.

    Not what the paper ran — kept (and benchmarked in EXPERIMENTS.md)
    because it shows how much of BO's deficit was representation rather
    than algorithm: with this encoding BO closes most of the gap to
    Collie on our substrate.
    """

    def log_scale(value: float, max_log2: float) -> float:
        return math.log2(max(value, 1)) / max_log2

    qp_onehot = [
        1.0 if workload.qp_type is t else 0.0
        for t in (QPType.RC, QPType.UC, QPType.UD)
    ]
    op_onehot = [
        1.0 if workload.opcode is o else 0.0
        for o in (Opcode.SEND, Opcode.WRITE, Opcode.READ)
    ]
    return np.array(
        qp_onehot
        + op_onehot
        + [
            1.0 if workload.direction is Direction.BIDIRECTIONAL else 0.0,
            1.0 if workload.colocation is Colocation.MIXED_LOOPBACK else 0.0,
            1.0 if workload.src_device.startswith("gpu") else 0.0,
            1.0 if workload.dst_device.startswith("gpu") else 0.0,
            1.0 if workload.src_device != workload.dst_device else 0.0,
            log_scale(workload.mtu, 12.0),
            log_scale(workload.num_qps, 14.0),
            log_scale(workload.wqe_batch, 7.0),
            workload.sge_per_wqe / 8.0,
            log_scale(workload.wq_depth, 12.0),
            log_scale(workload.mrs_per_qp, 10.0),
            log_scale(workload.mr_bytes, 22.0),
            log_scale(workload.avg_msg_bytes, 22.0),
            workload.small_message_fraction,
            workload.large_message_fraction,
        ]
    )


class GaussianProcess:
    """Minimal RBF-kernel GP regressor with Cholesky inference."""

    def __init__(self, length_scale: float = 0.35, noise: float = 1e-2) -> None:
        self.length_scale = length_scale
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol = None
        self._alpha: Optional[np.ndarray] = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a ** 2, axis=1)[:, None]
            + np.sum(b ** 2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0) / self.length_scale ** 2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._x = x
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        normalised = (y - self._y_mean) / self._y_std
        gram = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._chol = cho_factor(gram, lower=True)
        self._alpha = cho_solve(self._chol, normalised)

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if self._x is None:
            raise RuntimeError("fit() must be called before predict()")
        cross = self._kernel(x, self._x)
        mean = cross @ self._alpha
        v = cho_solve(self._chol, cross.T)
        var = 1.0 + self.noise - np.sum(cross.T * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12))
        return mean * self._y_std + self._y_mean, std * self._y_std


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for maximisation."""
    improve = mean - best - xi
    z = improve / np.maximum(std, 1e-12)
    return improve * norm.cdf(z) + std * norm.pdf(z)


class BayesOptSearch:
    """Per-counter BO passes, ranked and budgeted like Collie's."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        budget_hours: float = 10.0,
        seed: int = 0,
        use_mfs: bool = True,
        noise: float = 0.02,
        warmup_points: int = 10,
        encoding: str = "paper",
        cache: Optional["EvalCache"] = None,
    ) -> None:
        if encoding not in ("paper", "modern"):
            raise ValueError("encoding must be 'paper' or 'modern'")
        self.encode = (
            encode_workload if encoding == "paper" else encode_workload_modern
        )
        self.encoding = encoding
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.space = SearchSpace.for_subsystem(subsystem)
        self.clock = SimulatedClock(budget_hours * 3600.0)
        self.testbed = Testbed(
            subsystem, clock=self.clock, noise=noise, cache=cache
        )
        self.monitor = AnomalyMonitor(subsystem)
        self.rng = np.random.default_rng(seed)
        self.use_mfs = use_mfs
        self.warmup_points = warmup_points
        self.anomalies: list[MinimalFeatureSet] = []
        self.events: list[TraceEvent] = []

    # -- measurement ---------------------------------------------------------

    def _measure(self, workload: WorkloadDescriptor, signal: SearchSignal, kind):
        result = self.testbed.run(workload, rng=self.rng, phase=kind)
        measurement = result.measurement
        verdict = self.monitor.classify(measurement)
        self.events.append(
            TraceEvent(
                time_seconds=result.finished_at,
                counter=signal.counter,
                counter_value=signal.value(measurement),
                symptom=verdict.symptom,
                tags=measurement.tags,
                workload=workload,
                kind=kind,
                counters=dict(measurement.counters),
            )
        )
        if (
            self.use_mfs
            and verdict.is_anomalous
            and match_any(self.anomalies, workload) is None
        ):
            self._extract_mfs(workload, verdict.symptom, signal)
        return measurement

    def _extract_mfs(self, workload, symptom, signal) -> None:
        def probe(candidate: WorkloadDescriptor) -> str:
            if self.clock.expired:
                return "healthy"
            probed = self._probe_measure(candidate, signal)
            return self.monitor.classify(probed).symptom

        extractor = MFSExtractor(self.space, probe, probes_per_dimension=2)
        mfs = extractor.construct(
            workload, symptom, at_seconds=self.clock.now, known=self.anomalies
        )
        if mfs is not None:
            self.anomalies.append(mfs)

    def _probe_measure(self, workload, signal):
        result = self.testbed.run(workload, rng=self.rng, phase="mfs")
        verdict = self.monitor.classify(result.measurement)
        self.events.append(
            TraceEvent(
                time_seconds=result.finished_at,
                counter=signal.counter,
                counter_value=signal.value(result.measurement),
                symptom=verdict.symptom,
                tags=result.measurement.tags,
                workload=workload,
                kind="mfs",
            )
        )
        return result.measurement

    # -- the BO loop ---------------------------------------------------------

    def run(self) -> BaselineReport:
        ranking = self._rank_counters()
        remaining = list(ranking)
        while remaining and not self.clock.expired:
            counter = remaining.pop(0)
            slots_left = len(remaining) + 1
            slice_seconds = max(
                self.clock.remaining * 0.30,
                self.clock.remaining / slots_left,
            )
            self._run_pass(SearchSignal(counter), self.clock.now + slice_seconds)
        return BaselineReport(
            name="bayesopt" if self.use_mfs else "bayesopt-nomfs",
            subsystem_name=self.subsystem.name,
            events=self.events,
            experiments=len(self.events),
            elapsed_seconds=self.clock.now,
        )

    def _rank_counters(self) -> list[str]:
        signal = SearchSignal(DIAGNOSTIC_COUNTERS[0])
        observations: dict = {name: [] for name in DIAGNOSTIC_COUNTERS}
        for _ in range(self.warmup_points):
            if self.clock.expired:
                break
            workload = self.space.random(self.rng)
            measurement = self._measure(workload, signal, kind="probe")
            for name in DIAGNOSTIC_COUNTERS:
                observations[name].append(float(measurement.counters[name]))

        def dispersion(name: str) -> float:
            values = np.array(observations[name])
            if values.size == 0 or values.mean() <= 0:
                return 0.0
            return float(values.std() / values.mean())

        ranked = sorted(DIAGNOSTIC_COUNTERS, key=dispersion, reverse=True)
        return [name for name in ranked if dispersion(name) > 0.0]

    def _run_pass(self, signal: SearchSignal, deadline: float) -> None:
        xs: list[np.ndarray] = []
        ys: list[float] = []

        def observe(workload: WorkloadDescriptor) -> None:
            measurement = self._measure(workload, signal, kind="search")
            xs.append(self.encode(workload))
            # log1p compresses the counter's orders of magnitude so one
            # extreme observation does not flatten the GP posterior.
            ys.append(math.log1p(max(signal.value(measurement), 0.0)))

        for _ in range(3):
            if self.clock.now >= deadline or self.clock.expired:
                return
            observe(self.space.random(self.rng))

        gp = GaussianProcess()
        while self.clock.now < deadline and not self.clock.expired:
            keep = slice(-MAX_OBSERVATIONS, None)
            gp.fit(np.array(xs[keep]), np.array(ys[keep]))
            candidates = self._candidates()
            if not candidates:
                observe(self.space.random(self.rng))
                continue
            encoded = np.array([self.encode(c) for c in candidates])
            mean, std = gp.predict(encoded)
            best = max(ys[keep])
            scores = expected_improvement(mean, std, best)
            observe(candidates[int(np.argmax(scores))])

    def _candidates(self) -> list[WorkloadDescriptor]:
        out = []
        for _ in range(CANDIDATE_POOL):
            point = self.space.random(self.rng)
            if self.use_mfs and match_any(self.anomalies, point) is not None:
                continue
            out.append(point)
        return out
