"""Search baselines the paper compares Collie against (§7.2):

* random input generation in the same search space (black-box fuzzing);
* Bayesian Optimization over the counters, following [31], MFS-enhanced
  for fairness exactly as the paper does;
* a Perftest-style generator confined to the workloads the standard
  benchmark tools can express (§7.1's reproducibility comparison).
"""

from repro.baselines.bayesopt import BayesOptSearch
from repro.baselines.genetic import GeneticSearch
from repro.baselines.perftest import PerftestGenerator
from repro.baselines.random_search import RandomSearch

__all__ = [
    "BayesOptSearch",
    "GeneticSearch",
    "PerftestGenerator",
    "RandomSearch",
]
