"""A Perftest-style workload generator (§7.1's comparison baseline).

Perftest (``ib_send_bw``, ``ib_write_bw``, ``ib_read_bw``) repeatedly
sends fixed-size messages with single-SGE work requests posted one at a
time.  Flags give the tester message size (``-s``), QP count (``-q``),
queue depths (``--tx-depth``/``--rx-depth``), MTU (``-m``) and
bidirectional mode (``-b``); there is no batching control, no SG-list
shaping, no mixed message patterns, no memory-region sweep, and no GPU
or NUMA placement in the classic tool.

The generator enumerates that restricted space so the benchmark harness
can measure how many of the 18 anomalies the standard tooling can
reproduce at all (the paper: 4 of 18, "with very careful parameter
tuning").
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.cluster.testbed import Testbed
from repro.core.monitor import AnomalyMonitor
from repro.hardware.subsystems import Subsystem, get_subsystem
from repro.hardware.workload import Colocation, Direction, WorkloadDescriptor
from repro.verbs.constants import SUPPORTED_OPCODES, Opcode, QPType

#: Flag values a careful tester would sweep.
MESSAGE_SIZES = (64, 512, 1024, 4096, 65536, 1048576, 4194304)
QP_COUNTS = (1, 4, 16, 32, 64, 128, 512, 1024)
TX_DEPTHS = (16, 128, 512)
MTUS = (1024, 4096)


class PerftestGenerator:
    """Enumerates and runs the Perftest-expressible workload space."""

    def __init__(
        self,
        subsystem: "Subsystem | str",
        noise: float = 0.02,
        batch: bool = True,
    ) -> None:
        if isinstance(subsystem, str):
            subsystem = get_subsystem(subsystem)
        self.subsystem = subsystem
        self.testbed = Testbed(subsystem, noise=noise, batch=batch)
        self.monitor = AnomalyMonitor(subsystem)

    def workloads(self) -> Iterator[WorkloadDescriptor]:
        """Every point the tool can express, as a workload descriptor."""
        combos = itertools.product(
            (QPType.RC, QPType.UC, QPType.UD),
            (Opcode.SEND, Opcode.WRITE, Opcode.READ),
            (Direction.UNIDIRECTIONAL, Direction.BIDIRECTIONAL),
            (Colocation.REMOTE_ONLY, Colocation.MIXED_LOOPBACK),
            MTUS,
            MESSAGE_SIZES,
            QP_COUNTS,
            TX_DEPTHS,
        )
        for qp_type, opcode, direction, coloc, mtu, size, qps, depth in combos:
            if opcode not in SUPPORTED_OPCODES[qp_type]:
                continue
            if qp_type is QPType.UD and size > mtu:
                continue
            yield WorkloadDescriptor(
                qp_type=qp_type,
                opcode=opcode,
                direction=direction,
                colocation=coloc,
                mtu=mtu,
                num_qps=qps,
                wqe_batch=1,  # perftest posts WRs one by one
                sge_per_wqe=1,  # single-SGE requests only
                wq_depth=depth,
                msg_sizes_bytes=(size,),  # fixed-size traffic
                mrs_per_qp=1,  # one buffer per QP
                mr_bytes=max(size, 4096),
            )

    def sweep(
        self, seed: int = 0, limit: int = None, batch_size: int = 64
    ) -> dict:
        """Run the whole space; returns ground-truth tags reproduced.

        ``limit`` bounds the number of experiments for quick runs; the
        full space is a few thousand points.  The enumeration is fixed
        and the RNG feeds observation noise only, so chunking it through
        the batched evaluator (``batch_size`` points at a time) is
        bit-identical to the scalar loop; ``batch_size<=1`` (or a
        ``batch=False`` generator) forces the scalar path.
        """
        rng = np.random.default_rng(seed)
        found: dict = {}
        points: Iterator[WorkloadDescriptor] = self.workloads()
        if limit is not None:
            points = itertools.islice(points, limit)
        if not batch_size or batch_size <= 1 or not self.testbed.batch_enabled:
            for workload in points:
                result = self.testbed.run(workload, rng=rng)
                self._record(found, workload, result)
            return found
        while True:
            chunk = list(itertools.islice(points, batch_size))
            if not chunk:
                break
            results = self.testbed.run_many(chunk, rng=rng)
            for workload, result in zip(chunk, results):
                self._record(found, workload, result)
        return found

    def _record(self, found: dict, workload, result) -> None:
        verdict = self.monitor.classify(result.measurement)
        if verdict.is_anomalous:
            for tag in result.measurement.tags:
                found.setdefault(tag, workload)
