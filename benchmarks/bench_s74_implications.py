"""§7.4's implications, regenerated as measurable claims.

Three observations the paper draws from the anomaly suite:

1. **No optimal MTU** — comparing anomaly #14 (needs *large* MTU on the
   P2100G) with #3/#6 (need *small* MTU on the CX-6): the same MTU
   setting heals one subsystem and breaks another.
2. **Opaque resources break isolation** — a connection with a hostile
   message pattern collapses a co-running victim's throughput through
   shared RNIC caches, even though bandwidth-wise both fit.
3. **Hosts generate pause frames** — every pause-frame anomaly in the
   suite originates at an RNIC, not a switch (the testbed's network is
   congestion-free by construction).
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS, setting


def mtu_sensitivity():
    """Claim 1: sweep MTU for appendix settings 3 (F) and 14 (H)."""
    rows = []
    for number in (3, 14):
        s = setting(number)
        subsystem = get_subsystem(s.subsystem)
        model = SteadyStateModel(subsystem)
        monitor = AnomalyMonitor(subsystem)
        for mtu in (1024, 4096):
            workload = s.workload.replace(mtu=mtu)
            verdict = monitor.classify(
                model.evaluate(workload, np.random.default_rng(0))
            )
            rows.append(
                {
                    "anomaly": s.expected_tag,
                    "subsystem": s.subsystem,
                    "MTU": mtu,
                    "outcome": verdict.symptom,
                }
            )
    return rows


def host_generated_pauses():
    """Claim 3: all pause anomalies are host-generated."""
    rng = np.random.default_rng(0)
    pause_settings = [
        s for s in APPENDIX_SETTINGS if s.expected_symptom == "pause frame"
    ]
    host_side = 0
    for s in pause_settings:
        subsystem = get_subsystem(s.subsystem)
        measurement = SteadyStateModel(subsystem).evaluate(s.workload, rng)
        # Pauses arise where the receiver RNIC's service rate falls below
        # the injection rate — a host-side condition by construction.
        if any(
            d.pause_ratio > 0
            and d.injection_msgs_per_sec > d.achieved_msgs_per_sec
            for d in measurement.directions
        ):
            host_side += 1
    return host_side, len(pause_settings)


def test_s74_implications(benchmark):
    rows, (host_side, total) = benchmark(
        lambda: (mtu_sensitivity(), host_generated_pauses())
    )
    print_artifact(
        "§7.4 claim 1: there is no MTU setting safe for every subsystem",
        render_table(rows),
    )
    by_key = {(r["anomaly"], r["MTU"]): r["outcome"] for r in rows}
    # Small MTU breaks the CX-6 READ path; large MTU heals it...
    assert by_key[("A3", 1024)] == "pause frame"
    assert by_key[("A3", 4096)] == "healthy"
    # ...while the P2100G behaves the other way around (paper: "unusual
    # because most cases show large MTU improves performance").
    assert by_key[("A14", 4096)] == "low throughput"
    assert by_key[("A14", 1024)] == "healthy"

    record_result(
        "s74_implications",
        mtu_sweep_rows=len(rows),
        host_generated_pauses=host_side,
        pause_anomalies=total,
    )
    print_artifact(
        "§7.4 claim 3: hosts, not switches, generate the pause frames",
        f"  {host_side}/{total} pause anomalies originate at a host RNIC "
        "(network is congestion-free by construction)",
    )
    assert host_side == total
