"""§7.4 claim 2: opaque RNIC resources defeat bandwidth isolation.

"There exist resources that are opaque for developers and data center
operators... it is possible that a connection with a specific message
pattern affects another connection by triggering cache misses, even
when the bandwidth and other resources are well isolated."

A victim tenant with a guaranteed 50% bandwidth share runs next to
aggressors of growing opaque-resource appetite.  Bandwidth isolation is
perfect by construction; the interference factor below 1.0 is entirely
the cache-occupancy leak.
"""

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.hardware.coexist import CoexistenceModel
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode


def victim():
    return WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=64, wqe_batch=1,
        msg_sizes_bytes=(512,), mtu=1024,
    )


AGGRESSORS = (
    ("idle neighbour (4 QPs, 1MB)", WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4, msg_sizes_bytes=(1048576,),
        mtu=4096)),
    ("512 QPs", WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=512, msg_sizes_bytes=(512,),
        mtu=1024, wqe_batch=1)),
    ("4K QPs", WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4096, msg_sizes_bytes=(512,),
        mtu=1024, wqe_batch=1)),
    ("4K QPs x 32 MRs", WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=4096, mrs_per_qp=32,
        msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1)),
)


def sweep():
    model = CoexistenceModel(get_subsystem("F"))
    rows = []
    for label, aggressor in AGGRESSORS:
        result = model.evaluate(victim(), aggressor, victim_share=0.5)
        rows.append(
            {
                "aggressor": label,
                "victim fair share": f"{result.fair_share_gbps:.1f} Gbps",
                "victim achieved": f"{result.shared_gbps:.1f} Gbps",
                "isolation held": f"{100 * result.interference_factor:.0f}%",
            }
        )
    return rows


def test_isolation_implication(benchmark):
    rows = benchmark(sweep)
    print_artifact(
        "§7.4 claim 2: victim with a guaranteed 50% bandwidth share vs "
        "cache-hungry neighbours (subsystem F)",
        render_table(rows),
    )
    held = [float(r["isolation held"].rstrip("%")) for r in rows]
    record_result(
        "isolation_implication",
        polite_neighbour_held_pct=held[0],
        worst_neighbour_held_pct=held[-1],
    )
    assert held[0] >= 95  # polite neighbour: isolation works
    assert held[-1] <= 40  # cache-thrashing neighbour: it does not
    assert all(a >= b for a, b in zip(held, held[1:]))  # monotone decay