"""Extension bench: memoized evaluation + process-parallel campaigns.

The acceptance scenario for the executor/cache subsystem: a 3-seed
Figure 4-style Collie campaign on subsystem F, run once serially from a
cold start and once with ``workers=3`` and a warm :class:`EvalCache`.
The warm parallel run must be at least twice as fast on parallel
hardware while producing bit-identical reports (the determinism suite
in ``tests/core/test_determinism.py`` pins the identity independently;
this bench re-checks it on the full-budget campaign).

On single-core hosts process fan-out cannot buy wall time, so the 2x
bound is asserted only when at least 3 CPUs are available; the cache's
serial benefit (skipped functional bursts and solver calls) is asserted
everywhere.
"""

import os
import time

from benchmarks.conftest import (
    BUDGET_HOURS,
    SEEDS,
    print_artifact,
    record_result,
)
from repro.analysis.campaign import run_campaign
from repro.analysis.serialize import mfs_to_dict
from repro.core import EvalCache

CAMPAIGN_SEEDS = tuple(range(1, max(SEEDS, 3) + 1))


def campaign_fingerprint(result):
    return [
        (
            [mfs_to_dict(a) for a in report.anomalies],
            [sorted(e.counters.items()) for e in report.events],
        )
        for report in result.reports
    ]


def run_scenario():
    started = time.perf_counter()
    serial = run_campaign(
        "collie", "F", seeds=CAMPAIGN_SEEDS, budget_hours=BUDGET_HOURS,
        workers=1,
    )
    serial_seconds = time.perf_counter() - started

    # Warm the cache with the evaluations the serial campaign performed.
    cache = EvalCache()
    run_campaign(
        "collie", "F", seeds=CAMPAIGN_SEEDS, budget_hours=BUDGET_HOURS,
        workers=1, cache=cache,
    )
    warm_snapshot = cache.snapshot()

    started = time.perf_counter()
    parallel = run_campaign(
        "collie", "F", seeds=CAMPAIGN_SEEDS, budget_hours=BUDGET_HOURS,
        workers=3, cache=cache,
    )
    parallel_seconds = time.perf_counter() - started

    hits = cache.hits - warm_snapshot[0]
    misses = cache.misses - warm_snapshot[1]
    return {
        "serial": serial,
        "parallel": parallel,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "cache": cache,
    }


def test_cache_executor_speedup(benchmark):
    data = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    speedup = data["serial_seconds"] / max(data["parallel_seconds"], 1e-9)
    stats = data["parallel"].executor_stats
    record_result(
        "cache_executor",
        serial_seconds=data["serial_seconds"],
        parallel_seconds=data["parallel_seconds"],
        speedup=speedup,
        warm_hit_rate=data["warm_hit_rate"],
        fell_back_serial=stats.fell_back_serial,
    )
    print_artifact(
        "Campaign acceleration: 3-seed Collie campaign on subsystem F "
        f"({BUDGET_HOURS:.0f}h budget/seed)",
        "\n".join(
            [
                f"  serial cold:      {data['serial_seconds']:.2f}s wall",
                f"  3 workers + warm: {data['parallel_seconds']:.2f}s wall "
                f"({speedup:.2f}x)",
                f"  warm hit rate:    {data['warm_hit_rate']:.1%}",
                f"  executor:         {stats.describe()}",
                f"  host CPUs:        {os.cpu_count()}",
            ]
        )
        + "\n" + data["cache"].describe(),
    )
    # Identity first: acceleration must not change a single bit.
    assert campaign_fingerprint(data["serial"]) == campaign_fingerprint(
        data["parallel"]
    )
    # The warm cache serves nearly every point of the repeated campaign.
    assert data["warm_hit_rate"] > 0.9
    # On parallel hardware the combination must at least halve the wall
    # time; a single-core host cannot parallelize, so there the executor
    # only needs to stay within the serial ballpark.
    if (os.cpu_count() or 1) >= 3 and not stats.fell_back_serial:
        assert speedup >= 2.0
    else:
        assert speedup >= 0.5
