"""Telemetry-plane overhead bench: watching a run is ~free.

The same journaled campaign (subsystem F, three seeds, quick budget)
runs bare and with the full live-telemetry stack attached — heartbeat
records on, a :class:`~repro.obs.aggregate.CampaignAggregator` tailing
the journal, a :class:`~repro.obs.export.TelemetryServer` serving
``/metrics``, and a scraper thread hammering the endpoint for the whole
run.  The attached side must cost < 2% extra wall-clock: the plane's
design makes that possible because every reader polls the journal file
from its own thread (the writer is never locked, signalled or even
aware), and the writer's only extra work is one ``heartbeat`` line per
completed task.

Each side's wall time is the minimum over several rounds, alternating
which side runs first within a round (as in
``bench_latency_overhead.py``): host frequency drift between
back-to-back passes is larger than the gate itself, and alternation
keeps it out of the minima.
"""

import os
import tempfile
import threading
import time
import urllib.request

from benchmarks.conftest import print_artifact, record_result
from repro.analysis.campaign import run_campaign
from repro.obs import (
    CampaignAggregator,
    FlightRecorder,
    RunJournal,
    TelemetryServer,
)

#: Interleaved timing rounds per side; the minimum is reported.
ROUNDS = int(os.environ.get("REPRO_TELEMETRY_BENCH_ROUNDS", "7"))
SUBSYSTEM = "F"
SEEDS = (1, 2, 3)
BUDGET_HOURS = 2.0
#: Seconds between scrapes of ``/metrics`` while the campaign runs.
#: Still orders of magnitude hotter than a production Prometheus
#: cadence (15s on runs lasting hours): the bench host is single-core,
#: so every scrape's full cost — HTTP handler, aggregator fold, text
#: rendering, even the client's own urllib work — is charged to the
#: campaign's wall-clock.  Production overhead is far below the gate.
SCRAPE_INTERVAL = 0.1
#: The gate: attaching the telemetry plane may cost at most this.
OVERHEAD_CEILING = 0.02


def campaign(path, recorder):
    result = run_campaign(
        "collie", subsystem=SUBSYSTEM, seeds=SEEDS,
        budget_hours=BUDGET_HOURS, recorder=recorder,
    )
    recorder.close()
    return result


def bare_side(directory, tag):
    """Wall seconds of the journaled campaign, nobody watching."""
    path = os.path.join(directory, f"bare-{tag}.jsonl")
    started = time.perf_counter()
    campaign(path, FlightRecorder(journal=RunJournal(path)))
    return time.perf_counter() - started


def observed_side(directory, tag):
    """Wall seconds with heartbeats + aggregator + a busy scraper."""
    path = os.path.join(directory, f"observed-{tag}.jsonl")
    recorder = FlightRecorder(journal=RunJournal(path), heartbeats=True)
    server = TelemetryServer(
        metrics=recorder.metrics, aggregator=CampaignAggregator([path]),
    ).start()
    stop = threading.Event()
    scrapes = [0]

    def scraper():
        while not stop.is_set():
            with urllib.request.urlopen(server.url("/metrics")) as resp:
                resp.read()
            scrapes[0] += 1
            stop.wait(SCRAPE_INTERVAL)

    thread = threading.Thread(target=scraper, daemon=True)
    started = time.perf_counter()
    thread.start()
    try:
        campaign(path, recorder)
        elapsed = time.perf_counter() - started
    finally:
        stop.set()
        thread.join(timeout=5.0)
        server.close()
    return elapsed, scrapes[0]


def run_overhead_scenario():
    with tempfile.TemporaryDirectory() as tmp:
        bare_side(tmp, "warm")  # warm both sides before timing
        observed_side(tmp, "warm")
        observed = bare = float("inf")
        total_scrapes = 0
        for index in range(ROUNDS):
            sides = ("observed", "bare") if index % 2 else ("bare", "observed")
            for side in sides:
                if side == "bare":
                    bare = min(bare, bare_side(tmp, f"r{index}"))
                else:
                    seconds, scrapes = observed_side(tmp, f"r{index}")
                    observed = min(observed, seconds)
                    total_scrapes += scrapes
    return {
        "bare_seconds": bare,
        "observed_seconds": observed,
        "scrapes": total_scrapes,
    }


def test_telemetry_overhead(benchmark):
    data = benchmark.pedantic(run_overhead_scenario, rounds=1, iterations=1)
    overhead = (
        (data["observed_seconds"] - data["bare_seconds"])
        / data["bare_seconds"]
    )
    record_result(
        "telemetry",
        subsystem=SUBSYSTEM,
        campaign_seeds=len(SEEDS),
        campaign_budget_hours=BUDGET_HOURS,
        rounds=ROUNDS,
        bare_seconds=data["bare_seconds"],
        observed_seconds=data["observed_seconds"],
        overhead_fraction=overhead,
        scrapes=data["scrapes"],
        overhead_ceiling=OVERHEAD_CEILING,
    )
    print_artifact(
        f"Telemetry-plane overhead: {len(SEEDS)}-seed {SUBSYSTEM} campaign "
        f"({BUDGET_HOURS:g}h budget, best of {ROUNDS})",
        "\n".join(
            [
                f"  bare:     {data['bare_seconds'] * 1e3:.1f}ms",
                f"  observed: {data['observed_seconds'] * 1e3:.1f}ms "
                f"({overhead:+.2%}, gate < {OVERHEAD_CEILING:.0%})",
                f"  scraped /metrics {data['scrapes']} times while running",
            ]
        ),
    )
    # The observed side must have actually been observed.
    assert data["scrapes"] > 0, "the scraper never reached /metrics"
    assert overhead < OVERHEAD_CEILING, (
        f"telemetry plane overhead {overhead:+.2%} >= "
        f"{OVERHEAD_CEILING:.0%} on the quick campaign"
    )
