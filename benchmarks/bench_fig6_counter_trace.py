"""Figure 6: the *Receive WQE Cache Miss* counter during the search.

The paper's illustrative trace: random input generation never drives the
diagnostic counter high; Collie without MFS drives it high but lingers in
already-found regions; full Collie both climbs and moves on, with most
anomalies discovered in high-counter regions.
"""

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import counter_trace
from repro.analysis.render import render_counter_trace

COUNTER = "rx_wqe_cache_miss"


def test_fig6(benchmark, campaigns):
    def campaign():
        collie = campaigns.collie("F")[0]
        no_mfs = campaigns.collie("F", "diag", use_mfs=False)[0]
        random_run = campaigns.random("F")[0]
        return collie, no_mfs, random_run

    collie, no_mfs, random_run = benchmark.pedantic(
        campaign, rounds=1, iterations=1
    )

    def counter_values(report):
        return [e.counters.get(COUNTER, 0.0) for e in report.events]

    peak = max(
        max(counter_values(collie), default=1.0),
        max(counter_values(no_mfs), default=1.0),
        1.0,
    )

    collie_trace = counter_trace(
        "Collie", collie.events, COUNTER, max_value=peak
    )
    no_mfs_trace = counter_trace(
        "Collie w/o MFS", no_mfs.events, COUNTER, max_value=peak
    )
    random_trace = counter_trace(
        "Random", random_run.events, COUNTER, max_value=peak
    )
    print_artifact(
        "Figure 6: Receive WQE Cache Miss during the search (normalised)",
        "\n\n".join(
            render_counter_trace(t)
            for t in (collie_trace, no_mfs_trace, random_trace)
        ),
    )

    import numpy as np

    def stats(trace):
        values = np.array(trace.normalised_values)
        return float(values.max(initial=0.0)), float(
            np.median(values) if values.size else 0.0
        )

    collie_peak, collie_median = stats(collie_trace)
    no_mfs_peak, no_mfs_median = stats(no_mfs_trace)
    random_peak, random_median = stats(random_trace)
    record_result(
        "fig6_counter_trace",
        collie_peak=collie_peak,
        collie_median=collie_median,
        no_mfs_peak=no_mfs_peak,
        no_mfs_median=no_mfs_median,
        random_peak=random_peak,
        random_median=random_median,
        anomaly_marks=len(collie_trace.anomaly_marks),
    )
    print_artifact(
        "Figure 6 summary (normalised counter values)",
        f"  Collie:         peak {collie_peak:.2f}, median {collie_median:.4f}\n"
        f"  Collie w/o MFS: peak {no_mfs_peak:.2f}, median {no_mfs_median:.4f}\n"
        f"  Random:         peak {random_peak:.2f}, median {random_median:.4f}\n"
        f"  Collie anomalies marked on trace: "
        f"{len(collie_trace.anomaly_marks)}",
    )
    # Both SA variants drive the counter to (and hold it in) high
    # regions; random sampling only spikes there occasionally — its
    # *sustained* level stays far below (the paper's orange line).
    assert collie_peak > 0.5
    assert no_mfs_peak > 0.5
    assert random_median < no_mfs_median
    # Collie-with-MFS marks distinct anomaly discoveries on the trace.
    assert len(collie_trace.anomaly_marks) >= 3
