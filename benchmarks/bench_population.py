"""Extension bench: the population-stepped SA driver.

The acceptance scenario for population vectorization: one real
population run on the MFS-heaviest subsystem, its generation stream
captured wholesale, replayed through both evaluation paths:

* **scalar** — cache-less per-point ``model.evaluate``, exactly what
  every chain-step of the legacy ``search --seeds N`` path pays;
* **generation-batched** — one ``evaluate_each`` per generation through
  a shared :class:`EvalCache` cold-started with the pass, exactly what
  the population driver's ``_prepare`` pays.

The batched replay must be at least 3x faster wall-clock while
producing bit-identical measurements and leaving every chain RNG in
the bit-identical state.  The gate compares *paired* rounds (scalar
and batched back-to-back, best round wins) so host scheduling jitter
— which only ever inflates a measurement — cannot fail a genuinely
fast engine; the median paired speedup is recorded alongside.

End-to-end numbers are recorded, not gated: the same run is timed
against the ``search --seeds N`` campaign path at equal total
simulated budget, with every chain report asserted bit-identical to
its campaign twin.  The end-to-end ratio is Amdahl-bound well below
the evaluation-layer speedup because the per-chain SA/MFS/monitor
bookkeeping — identical in both paths by the bit-identity contract —
dominates once evaluation is batched; docs/DESIGN.md quantifies this.
"""

import os
import time

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis.campaign import run_campaign
from repro.analysis.serialize import mfs_to_dict, workload_to_dict
from repro.core.batcheval import BatchEvaluator
from repro.core.evalcache import EvalCache, canonical_point
from repro.core.population import PopulationCollie
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem

#: Paired timing rounds; the best round gates, the median is recorded.
ROUNDS = 5
SUBSYSTEM = "H"
CHAINS = int(os.environ.get("REPRO_POP_BENCH_CHAINS", "64"))
HOURS = float(os.environ.get("REPRO_POP_BENCH_HOURS", "0.3"))
SEED = 1
#: The acceptance floor on the generation-batched evaluation replay.
GATE = 3.0


def event_key(event):
    """Everything observable about one experiment, exactly."""
    return (
        event.time_seconds,
        event.counter,
        event.counter_value,
        event.symptom,
        event.tags,
        event.kind,
        workload_to_dict(event.workload),
        sorted(event.counters.items()),
    )


def report_key(report):
    """Anomaly set + full trajectory of one search run."""
    return (
        [mfs_to_dict(a) for a in report.anomalies],
        [event_key(e) for e in report.events],
    )


def measurement_key(measurement):
    return (
        list(measurement.counters.items()),
        [list(s.values.items()) for s in measurement.samples],
        measurement.directions,
        measurement.fired,
        list(measurement.features.items()),
    )


def run_population_and_campaign():
    """One timed population run (generation stream captured) and its
    timed ``search --seeds N`` campaign twin."""
    population = PopulationCollie(
        SUBSYSTEM, chains=CHAINS, budget_hours=HOURS, seed=SEED
    )
    batch = population._collies[0].testbed.engine.batch
    generations = []
    inner = batch.evaluate_each

    def tap(workloads, rngs, *args, **kwargs):
        generations.append(list(workloads))
        return inner(workloads, rngs, *args, **kwargs)

    batch.evaluate_each = tap
    started = time.perf_counter()
    report = population.run()
    population_seconds = time.perf_counter() - started

    started = time.perf_counter()
    campaign = run_campaign(
        "collie", subsystem=SUBSYSTEM,
        seeds=range(SEED, SEED + CHAINS),
        budget_hours=HOURS, workers=1,
    )
    campaign_seconds = time.perf_counter() - started
    identical = (
        [report_key(r) for r in report.reports]
        == [report_key(r) for r in campaign.reports]
    )
    generations = [g for g in generations if len(g) >= 2]
    return {
        "population": report,
        "generations": generations,
        "population_seconds": population_seconds,
        "campaign_seconds": campaign_seconds,
        "end_to_end_identical": identical,
    }


def replay_generations(generations):
    """Time the generation stream through both evaluation paths.

    Chain RNGs are rebuilt outside each timed region (neither path
    constructs generators); each round times scalar then batched
    back-to-back so host jitter hits both sides of a pair.
    """
    subsystem = get_subsystem(SUBSYSTEM)

    def fresh_rngs():
        return [
            [np.random.default_rng(7919 + j) for j in range(len(g))]
            for g in generations
        ]

    pairs = []
    scalar_keep = batched_keep = None
    scalar_rngs_keep = batched_rngs_keep = None
    for _ in range(ROUNDS):
        rngs = fresh_rngs()
        model = SteadyStateModel(subsystem)
        started = time.perf_counter()
        scalar_keep = [
            [model.evaluate(p, rng=r) for p, r in zip(g, rs)]
            for g, rs in zip(generations, rngs)
        ]
        scalar_seconds = time.perf_counter() - started
        scalar_rngs_keep = rngs

        rngs = fresh_rngs()
        evaluator = BatchEvaluator(
            SteadyStateModel(subsystem, cache=EvalCache())
        )
        started = time.perf_counter()
        batched_keep = [
            evaluator.evaluate_each(g, rs)
            for g, rs in zip(generations, rngs)
        ]
        batched_seconds = time.perf_counter() - started
        batched_rngs_keep = rngs
        pairs.append((scalar_seconds, batched_seconds))

    identical = all(
        measurement_key(s) == measurement_key(b)
        and sr.bit_generator.state == br.bit_generator.state
        for sg, bg, srs, brs in zip(
            scalar_keep, batched_keep, scalar_rngs_keep, batched_rngs_keep
        )
        for s, b, sr, br in zip(sg, bg, srs, brs)
    )
    ratios = sorted(s / max(b, 1e-9) for s, b in pairs)
    best_scalar, best_batched = max(
        pairs, key=lambda p: p[0] / max(p[1], 1e-9)
    )
    return {
        "scalar_seconds": best_scalar,
        "batched_seconds": best_batched,
        "speedup": ratios[-1],
        "median_speedup": ratios[len(ratios) // 2],
        "identical": identical,
    }


def test_population_speedup(benchmark):
    data = benchmark.pedantic(
        run_population_and_campaign, rounds=1, iterations=1
    )
    generations = data["generations"]
    points = sum(len(g) for g in generations)
    unique = len({canonical_point(p) for g in generations for p in g})
    replay = replay_generations(generations)
    end_to_end = (
        data["campaign_seconds"] / max(data["population_seconds"], 1e-9)
    )
    record_result(
        "population",
        subsystem=SUBSYSTEM,
        chains=CHAINS,
        budget_hours=HOURS,
        generations=len(generations),
        points=points,
        unique_points=unique,
        scalar_seconds=replay["scalar_seconds"],
        batched_seconds=replay["batched_seconds"],
        generation_eval_speedup=replay["speedup"],
        generation_eval_speedup_median=replay["median_speedup"],
        campaign_seconds=data["campaign_seconds"],
        population_seconds=data["population_seconds"],
        end_to_end_speedup=end_to_end,
    )
    print_artifact(
        f"Population-stepped SA on subsystem {SUBSYSTEM} "
        f"({CHAINS} chains x {HOURS}h, {len(generations)} generations, "
        f"{points} points, {unique} unique)",
        "\n".join(
            [
                "  generation stream, scalar per-point eval: "
                f"{replay['scalar_seconds'] * 1e3:.0f}ms",
                "  generation stream, one evaluate_each/generation: "
                f"{replay['batched_seconds'] * 1e3:.0f}ms "
                f"({replay['speedup']:.2f}x best, "
                f"{replay['median_speedup']:.2f}x median)",
                f"  end to end: search --seeds {CHAINS} "
                f"{data['campaign_seconds']:.2f}s -> population "
                f"{data['population_seconds']:.2f}s ({end_to_end:.2f}x)",
            ]
        ),
    )
    # Identity first: speed must not change a single bit.
    assert data["end_to_end_identical"], (
        "population chains diverged from the --seeds campaign path"
    )
    assert replay["identical"], (
        "generation-batched evaluation diverged from the scalar loop"
    )
    # The acceptance floor: 3x on the generation evaluation layer.
    assert replay["speedup"] >= GATE, (
        f"generation-batched speedup {replay['speedup']:.2f}x < {GATE}x"
    )
