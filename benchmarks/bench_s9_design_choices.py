"""§9's design-space observation: no transport choice is safe.

"We show that for RDMA developers, in reality, there is no optimal
choice for a particular design decision (e.g., all transport types have
certain performance anomalies)."  Two regenerations:

* from the anomaly table: every transport family appears in Table 2;
* from published system designs: HERD-style (UD SEND), FaSST-style
  (UD RPC at scale) and FaRM-style (RC READ) workloads each land in
  *some* subsystem's anomaly region while being clean on others.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS
from repro.workloads.applications import (
    farm_style_workload,
    fasst_style_workload,
    herd_style_workload,
)

DESIGNS = (
    ("HERD-style (UD SEND)", herd_style_workload()),
    ("FaSST-style (UD RPC)", fasst_style_workload()),
    ("FaRM-style (RC READ)", farm_style_workload()),
)


def transports_in_table2():
    transports = {}
    for setting in APPENDIX_SETTINGS:
        key = setting.workload.qp_type.value
        transports.setdefault(key, []).append(setting.expected_tag)
    return transports


def design_sweep():
    rng = np.random.default_rng(0)
    rows = []
    for name, workload in DESIGNS:
        outcomes = {}
        for letter in ("B", "F", "H"):
            subsystem = get_subsystem(letter)
            measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
                workload, rng
            )
            verdict = AnomalyMonitor(subsystem).classify(measurement)
            outcomes[letter] = (
                verdict.symptom if verdict.is_anomalous else "ok"
            )
        rows.append({"design": name, **outcomes})
    return rows


def test_s9_design_choices(benchmark):
    transports, rows = benchmark(
        lambda: (transports_in_table2(), design_sweep())
    )
    print_artifact(
        "§9: anomalies per transport family in Table 2",
        "\n".join(
            f"  {qp_type}: {len(tags)} anomalies ({', '.join(tags)})"
            for qp_type, tags in sorted(transports.items())
        ),
    )
    print_artifact(
        "§9: published design points across subsystems (B=100G CX-5, "
        "F=200G CX-6, H=P2100G)",
        render_table(rows),
    )
    record_result(
        "s9_design_choices",
        **{
            f"{qp_type} anomalies": len(tags)
            for qp_type, tags in sorted(transports.items())
        },
        designs_anomalous_somewhere=sum(
            1 for row in rows
            if any(row[letter] != "ok" for letter in ("B", "F", "H"))
        ),
    )
    # Every transport type carries anomalies...
    assert set(transports) == {"RC", "UD"}
    assert all(len(tags) >= 2 for tags in transports.values())
    # ...and every published design point is anomalous *somewhere*
    # while clean somewhere else: there is no universally safe choice.
    for row in rows:
        outcomes = [row[letter] for letter in ("B", "F", "H")]
        assert any(o != "ok" for o in outcomes), row
        assert any(o == "ok" for o in outcomes), row
