"""Table 1: the eight testbed RDMA subsystem configurations.

Regenerates the paper's testbed inventory from the presets and verifies
every subsystem stands up and measures a baseline workload.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table, table1_rows
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import list_subsystems
from repro.hardware.workload import WorkloadDescriptor


def build_and_probe_all():
    """Instantiate every subsystem and run one baseline measurement."""
    rows = table1_rows()
    rng = np.random.default_rng(0)
    baseline = WorkloadDescriptor(mtu=4096, msg_sizes_bytes=(1048576,))
    rates = {}
    for subsystem in list_subsystems():
        measurement = SteadyStateModel(subsystem).evaluate(baseline, rng)
        rates[subsystem.name] = measurement.directions[0].wire_gbps
    return rows, rates


def test_table1(benchmark):
    rows, rates = benchmark(build_and_probe_all)
    record_result(
        "table1_subsystems",
        subsystems=len(rows),
        **{f"{name} baseline Gbps": rate for name, rate in rates.items()},
    )
    assert len(rows) == 8
    for row in rows:
        nominal = float(row["Speed"].split()[0])
        assert rates[row["Type"]] >= 0.95 * nominal
    print_artifact(
        "Table 1: Testbed RDMA subsystems configurations",
        render_table(rows),
    )
