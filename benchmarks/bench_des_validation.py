"""Ablation/validation: event-level simulation vs the closed forms.

DESIGN.md's solver is analytic; this bench replays all 18 Appendix A
settings through the independent discrete-event flow simulation and
reports the agreement on pause duty cycle and delivered throughput —
the evidence that the closed-form steady state is not an artefact of
its own assumptions.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.hardware.des.validate import validate_measurement
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def validate_all():
    rows = []
    rng = np.random.default_rng(0)
    for setting in APPENDIX_SETTINGS:
        subsystem = get_subsystem(setting.subsystem)
        measurement = SteadyStateModel(subsystem, noise=0.0).evaluate(
            setting.workload, rng
        )
        for result in validate_measurement(measurement):
            rows.append(
                {
                    "setting": setting.number,
                    "dir": result.direction,
                    "pause analytic": f"{result.analytic_pause_ratio:.3f}",
                    "pause simulated": f"{result.simulated_pause_ratio:.3f}",
                    "tput analytic (msg/s)": f"{result.analytic_msgs_per_sec:.3g}",
                    "tput simulated": f"{result.simulated_msgs_per_sec:.3g}",
                    "agrees": "yes" if result.agrees else "NO",
                }
            )
    return rows


def test_des_validation(benchmark):
    rows = benchmark.pedantic(validate_all, rounds=1, iterations=1)
    print_artifact(
        "Event-level vs closed-form agreement over the 18 Appendix A "
        "settings",
        render_table(rows),
    )
    disagreements = [r for r in rows if r["agrees"] != "yes"]
    record_result(
        "des_validation",
        directions=len(rows),
        disagreements=len(disagreements),
    )
    assert not disagreements
