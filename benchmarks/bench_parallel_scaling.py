"""Extension bench: fleet scaling (§8's "multiple machines").

Sweeps the machine count and reports anomalies found on subsystem F in
the same 10-hour wall-clock budget.  With one machine the nine counters
share the budget and the conditions-heavy anomalies are often out of
reach; with one machine per counter, coverage approaches the full
Table 2 suite — quantifying how much of the single-machine gap to the
paper's 13/13 is budget dilution rather than search quality.
"""

from benchmarks.conftest import (
    BUDGET_HOURS,
    SEEDS,
    print_artifact,
    record_result,
)
from repro.analysis import render_table
from repro.core.parallel import ParallelCollie


def sweep_fleet_sizes():
    rows = []
    for machines in (1, 3, 9):
        found_counts = []
        for seed in range(1, SEEDS + 1):
            report = ParallelCollie(
                "F", machines=machines, budget_hours=BUDGET_HOURS, seed=seed
            ).run()
            found_counts.append(len(report.found_tags()))
        rows.append(
            {
                "machines": machines,
                "anomalies found (per seed)": ", ".join(
                    str(c) for c in found_counts
                ),
                "mean": f"{sum(found_counts) / len(found_counts):.1f}/13",
            }
        )
    return rows


def test_parallel_scaling(benchmark):
    rows = benchmark.pedantic(sweep_fleet_sizes, rounds=1, iterations=1)
    print_artifact(
        "Fleet scaling on subsystem F "
        f"({BUDGET_HOURS:.0f}h wall-clock budget)",
        render_table(rows),
    )

    def mean(row):
        return float(row["mean"].split("/")[0])

    record_result(
        "parallel_scaling",
        **{
            f"{row['machines']} machines mean found": mean(row)
            for row in rows
        },
    )
    assert mean(rows[-1]) >= mean(rows[0]) + 2  # 9 machines >> 1 machine
    assert mean(rows[-1]) >= 12  # near-complete Table 2 coverage
