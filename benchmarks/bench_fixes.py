"""The paper's fix ledger: "7 of them are already fixed".

Replays every Appendix A trigger against its subsystem in the post-fix
state (firmware rules removed, platform flags corrected, the MTU policy
applied) and verifies the ledger: the 7 documented fixes disarm their
anomalies, the 11 open ones persist.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.monitor import AnomalyMonitor
from repro.hardware.fixes import FIXES, fixed_subsystem
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def replay_fix_ledger():
    rng = np.random.default_rng(0)
    rows = []
    for setting in APPENDIX_SETTINGS:
        tag = setting.expected_tag
        fix = FIXES.get(tag)
        before = get_subsystem(setting.subsystem)
        after = fixed_subsystem(setting.subsystem)
        workload = setting.workload
        if fix is not None and fix.kind == "policy":
            # The MTU policy constrains workloads, not hardware.
            workload = workload.replace(mtu=4096)
        measurement = SteadyStateModel(after, noise=0.0).evaluate(
            workload, rng
        )
        verdict = AnomalyMonitor(after).classify(measurement)
        still_fires = tag in measurement.tags
        rows.append(
            {
                "anomaly": tag,
                "fix": fix.description if fix else "(none yet)",
                "post-fix outcome": verdict.symptom
                if still_fires or verdict.is_anomalous
                else "healthy",
                "ledger": (
                    "fixed" if fix and not still_fires
                    else "open" if not fix and still_fires
                    else "MISMATCH"
                ),
            }
        )
        del before
    return rows


def test_fix_ledger(benchmark):
    rows = benchmark(replay_fix_ledger)
    print_artifact(
        "Fix ledger: Appendix A triggers replayed on post-fix subsystems "
        "(paper: 7 fixed, 11 open)",
        render_table(rows),
    )
    record_result(
        "fixes",
        fixed=sum(1 for r in rows if r["ledger"] == "fixed"),
        open=sum(1 for r in rows if r["ledger"] == "open"),
        mismatches=sum(1 for r in rows if r["ledger"] == "MISMATCH"),
    )
    assert sum(1 for r in rows if r["ledger"] == "fixed") == 7
    assert sum(1 for r in rows if r["ledger"] == "open") == 11
    assert not any(r["ledger"] == "MISMATCH" for r in rows)
