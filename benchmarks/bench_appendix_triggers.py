"""Appendix A: every simplified concrete trigger setting reproduces.

Replays all 18 published trigger settings against their subsystem and
checks the expected Table 2 anomaly fires with the published symptom.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def replay_all():
    rows = []
    rng = np.random.default_rng(0)
    for setting in APPENDIX_SETTINGS:
        subsystem = get_subsystem(setting.subsystem)
        measurement = SteadyStateModel(subsystem).evaluate(
            setting.workload, rng
        )
        verdict = AnomalyMonitor(subsystem).classify(measurement)
        fwd = measurement.directions[0]
        rows.append(
            {
                "setting": setting.number,
                "subsystem": setting.subsystem,
                "expected": f"{setting.expected_tag}/{setting.expected_symptom}",
                "observed tags": ",".join(measurement.tags),
                "symptom": verdict.symptom,
                "wire Gbps": f"{fwd.wire_gbps:.1f}",
                "pause %": f"{100 * measurement.pause_ratio:.1f}",
                "reproduced": "yes"
                if (
                    setting.expected_tag in measurement.tags
                    and verdict.symptom == setting.expected_symptom
                )
                else "NO",
            }
        )
    return rows


def test_appendix_triggers(benchmark):
    rows = benchmark(replay_all)
    record_result(
        "appendix_triggers",
        settings=len(rows),
        reproduced=sum(1 for row in rows if row["reproduced"] == "yes"),
    )
    assert all(row["reproduced"] == "yes" for row in rows)
    print_artifact(
        "Appendix A: concrete trigger settings, replayed", render_table(rows)
    )
