"""Figure 5: ablation — counter family × MFS usage.

Four variants on subsystem F, as in the paper: SA(Perf), SA(Diag)
(annealing without the MFS skip), Collie(Perf) and Collie(Diag).  The
paper's findings: performance counters alone already guide the search
well (11 of 13), diagnostic counters extend coverage to the silent
cache-thrash anomalies (#7/#8 class), and MFS roughly halves the time by
eliminating redundant tests.
"""

from benchmarks.conftest import F_TAGS, print_artifact, record_result
from repro.analysis import time_to_find_series
from repro.analysis.render import render_time_to_find


def series_from(approach, reports):
    return time_to_find_series(
        approach,
        [report.first_hit_times() for report in reports],
        max_anomalies=len(F_TAGS),
    )


def test_fig5(benchmark, campaigns):
    def campaign():
        return {
            "SA (Perf)": campaigns.collie("F", "perf", use_mfs=False),
            "SA (Diag)": campaigns.collie("F", "diag", use_mfs=False),
            "Collie (Perf)": campaigns.collie("F", "perf", use_mfs=True),
            "Collie (Diag)": campaigns.collie("F", "diag", use_mfs=True),
        }

    variants = benchmark.pedantic(campaign, rounds=1, iterations=1)
    series = [series_from(name, reports) for name, reports in variants.items()]
    print_artifact(
        "Figure 5: ablation of counter family and MFS on subsystem F",
        render_time_to_find(series),
    )
    found = {s.approach: s.anomalies_found for s in series}
    skipped = {
        name: sum(r.skipped_points for r in reports) / len(reports)
        for name, reports in variants.items()
    }
    record_result(
        "fig5_ablation",
        **{f"{name} found": found[name] for name in variants},
        **{f"{name} skipped": skipped[name] for name in variants},
    )
    print_artifact(
        "Figure 5 summary",
        "\n".join(
            f"  {name}: {found[name]}/13 found, "
            f"{skipped[name]:.0f} points skipped via MFS on average"
            for name in variants
        ),
    )
    # MFS's mechanism is active: Collie skips covered regions, SA never.
    assert skipped["SA (Diag)"] == 0
    assert skipped["Collie (Diag)"] > 0
    # Counter guidance beats neither-variant floors: every variant finds
    # at least the easy half of the table.
    assert min(found.values()) >= 6
    # MFS does not hurt coverage.
    assert found["Collie (Diag)"] >= found["SA (Diag)"] - 1
