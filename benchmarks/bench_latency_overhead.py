"""Latency-telemetry overhead bench: the tail-latency signal is ~free.

The quick A-H search matrix (every subsystem, 2h budget, one seed) runs
with the tail-latency signal enabled and disabled; the enabled matrix
must cost < 2% extra wall-clock.  The signal's design makes that
possible: the per-WR profile is a pure function of solve outputs the
model already prices, the monitor's trigger uses an O(1) bound to skip
the percentile estimator for profiles that cannot trip it, and trace
events carry a lazy summary view so nothing is summarized that nobody
reads.

Each side's wall time is the minimum over several rounds, and the two
sides alternate which one runs first within a round: host frequency
drift between back-to-back passes is larger than the gate itself, and
alternation keeps it out of the minima.

A second, un-gated scenario journals both matrices through a
``FlightRecorder``: writing one extra ``latency`` record per experiment
costs real JSON encoding, so its overhead is reported in
``BENCH_latency.json`` as context rather than gated.
"""

import os
import tempfile
import time

from benchmarks.conftest import print_artifact, record_result
from repro.core import Collie
from repro.obs import FlightRecorder, RunJournal

#: Interleaved timing rounds per side; the minimum is reported.
ROUNDS = int(os.environ.get("REPRO_LATENCY_BENCH_ROUNDS", "9"))
JOURNALED_ROUNDS = 3
LETTERS = "ABCDEFGH"
BUDGET_HOURS = 2.0
SEED = 1
#: The gate: enabling the signal may cost at most this fraction.
OVERHEAD_CEILING = 0.02


def search_matrix(latency):
    """Wall seconds of the quick A-H matrix (unjournaled, the default)."""
    started = time.perf_counter()
    for letter in LETTERS:
        Collie.for_subsystem(
            letter, budget_hours=BUDGET_HOURS, seed=SEED, latency=latency,
        ).run()
    return time.perf_counter() - started


def journaled_matrix(latency, directory, tag):
    """Wall seconds of the same matrix with full journal telemetry."""
    started = time.perf_counter()
    for letter in LETTERS:
        path = os.path.join(directory, f"{letter}-{tag}.jsonl")
        recorder = FlightRecorder(journal=RunJournal(path))
        Collie.for_subsystem(
            letter, budget_hours=BUDGET_HOURS, seed=SEED,
            recorder=recorder, latency=latency,
        ).run()
        recorder.close()
    return time.perf_counter() - started


def _interleaved_minima(rounds, run_side):
    on = off = float("inf")
    for index in range(rounds):
        # Alternate which side runs first each round.
        sides = (True, False) if index % 2 else (False, True)
        for latency in sides:
            seconds = run_side(latency, index)
            if latency:
                on = min(on, seconds)
            else:
                off = min(off, seconds)
    return on, off


def run_overhead_scenario():
    search_matrix(True)
    search_matrix(False)  # warm-up both sides
    on, off = _interleaved_minima(
        ROUNDS, lambda latency, index: search_matrix(latency)
    )
    with tempfile.TemporaryDirectory() as tmp:
        journaled_on, journaled_off = _interleaved_minima(
            JOURNALED_ROUNDS,
            lambda latency, index: journaled_matrix(
                latency, tmp, f"r{index}-{int(latency)}"
            ),
        )

    # Sanity: the enabled matrix actually carries the signal.
    enabled = Collie.for_subsystem(
        "F", budget_hours=BUDGET_HOURS, seed=SEED
    ).run()
    disabled = Collie.for_subsystem(
        "F", budget_hours=BUDGET_HOURS, seed=SEED, latency=False
    ).run()
    return {
        "on_seconds": on,
        "off_seconds": off,
        "journaled_on_seconds": journaled_on,
        "journaled_off_seconds": journaled_off,
        "enabled_carries_signal": all(
            e.latency is not None for e in enabled.events if e.kind != "skip"
        ),
        "disabled_carries_none": all(
            e.latency is None for e in disabled.events
        ),
    }


def test_latency_overhead(benchmark):
    data = benchmark.pedantic(run_overhead_scenario, rounds=1, iterations=1)
    overhead = (
        (data["on_seconds"] - data["off_seconds"]) / data["off_seconds"]
    )
    journaled_overhead = (
        (data["journaled_on_seconds"] - data["journaled_off_seconds"])
        / data["journaled_off_seconds"]
    )
    record_result(
        "latency",
        matrix_letters=len(LETTERS),
        matrix_budget_hours=BUDGET_HOURS,
        rounds=ROUNDS,
        on_seconds=data["on_seconds"],
        off_seconds=data["off_seconds"],
        overhead_fraction=overhead,
        journaled_on_seconds=data["journaled_on_seconds"],
        journaled_off_seconds=data["journaled_off_seconds"],
        journaled_overhead_fraction=journaled_overhead,
        overhead_ceiling=OVERHEAD_CEILING,
    )
    print_artifact(
        f"Tail-latency telemetry overhead: quick A-H matrix "
        f"({BUDGET_HOURS:g}h budget, seed {SEED}, best of {ROUNDS})",
        "\n".join(
            [
                f"  signal off: {data['off_seconds'] * 1e3:.1f}ms",
                f"  signal on:  {data['on_seconds'] * 1e3:.1f}ms "
                f"({overhead:+.2%}, gate < {OVERHEAD_CEILING:.0%})",
                f"  journaled:  {data['journaled_off_seconds'] * 1e3:.1f}ms"
                f" -> {data['journaled_on_seconds'] * 1e3:.1f}ms "
                f"({journaled_overhead:+.2%}, informational)",
            ]
        ),
    )
    # The comparison must be between a run that models latency and one
    # that truly switches it off.
    assert data["enabled_carries_signal"], "enabled run carried no profiles"
    assert data["disabled_carries_none"], "disabled run leaked profiles"
    assert overhead < OVERHEAD_CEILING, (
        f"latency telemetry overhead {overhead:+.2%} >= "
        f"{OVERHEAD_CEILING:.0%} on the quick matrix"
    )
