"""§7.1's tooling comparison: what can Perftest-style generators reach?

The paper tried to reproduce the 18 anomalies with existing workload
generators and managed only 4 (#3, #8, #13, #15), with very careful
parameter tuning.  This bench sweeps the whole Perftest-expressible
space on both evaluation subsystems and reports the reachable subset.
"""

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.baselines.perftest import PerftestGenerator


def sweep_both():
    found = {}
    for letter in ("F", "H"):
        for tag, workload in PerftestGenerator(letter).sweep().items():
            found.setdefault(tag, (letter, workload))
    return found


def test_perftest_comparison(benchmark):
    found = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    rows = [
        {
            "anomaly": tag,
            "subsystem": letter,
            "perftest flags equivalent": workload.summary()[:80],
        }
        for tag, (letter, workload) in sorted(found.items())
    ]
    print_artifact(
        f"Perftest-style generator reproduces {len(found)}/18 anomalies "
        "(paper: 4/18)",
        render_table(rows),
    )
    record_result(
        "perftest_comparison",
        reachable=len(found),
        total=18,
    )
    # The claim's shape: only a small subset, and never the anomalies
    # that need batching, SG-list shaping or mixed patterns.
    assert len(found) <= 6
    assert not set(found) & {"A1", "A4", "A5", "A9", "A10", "A14", "A16",
                             "A18"}
