"""Ablation of this implementation's MFS design choices.

DESIGN.md's §6b documents three additions over the paper's plain
per-dimension probing: witness reduction, same-symptom probing, and
adversarial box validation.  This bench quantifies what each buys, by
extracting MFSes from the same random witnesses with features toggled
and measuring

* **false-skip rate** — the fraction of random points covered by the
  extracted boxes that are actually healthy (unsound boxes hide
  anomalies from the search forever);
* **probe cost** — experiments per extraction.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.mfs import MFSExtractor
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem

VARIANTS = (
    ("full (reduce + symptom + validate)", dict(reduce=True),
     dict(validate_box=True, same_symptom_only=True)),
    ("no box validation", dict(reduce=True),
     dict(validate_box=False, same_symptom_only=True)),
    ("no same-symptom filter", dict(reduce=True),
     dict(validate_box=True, same_symptom_only=False)),
    ("no witness reduction", dict(reduce=False),
     dict(validate_box=True, same_symptom_only=True)),
)

WITNESS_BUDGET = 6
COVERAGE_SAMPLES = 600


def evaluate_variant(construct_kwargs, extractor_kwargs):
    subsystem = get_subsystem("F")
    space = SearchSpace.for_subsystem(subsystem)
    model = SteadyStateModel(subsystem, noise=0.0)
    monitor = AnomalyMonitor(subsystem)
    oracle_rng = np.random.default_rng(0)

    def classify(workload):
        return monitor.classify(model.evaluate(workload, oracle_rng)).symptom

    rng = np.random.default_rng(42)
    extracted = []
    probes = 0
    attempts = 0
    while len(extracted) < WITNESS_BUDGET and attempts < 400:
        attempts += 1
        witness = space.random(rng)
        symptom = classify(witness)
        if symptom == "healthy":
            continue
        extractor = MFSExtractor(space, classify, **extractor_kwargs)
        mfs = extractor.construct(
            witness, symptom, known=extracted, **construct_kwargs
        )
        probes += extractor.experiments
        if mfs is not None:
            extracted.append(mfs)

    covered = false_skips = 0
    for _ in range(COVERAGE_SAMPLES):
        probe = space.random(rng)
        for mfs in extracted:
            if mfs.matches(probe):
                covered += 1
                if classify(probe) == "healthy":
                    false_skips += 1
                break
    return {
        "mfs extracted": len(extracted),
        "probes per MFS": round(probes / max(len(extracted), 1)),
        "covered samples": covered,
        "false-skip rate": (
            f"{100 * false_skips / covered:.1f}%" if covered else "n/a"
        ),
        "_false": false_skips,
        "_covered": covered,
    }


def run_ablation():
    rows = []
    for name, construct_kwargs, extractor_kwargs in VARIANTS:
        outcome = evaluate_variant(construct_kwargs, extractor_kwargs)
        rows.append({"variant": name, **outcome})
    return rows


def test_mfs_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    printable = [
        {k: v for k, v in row.items() if not k.startswith("_")}
        for row in rows
    ]
    print_artifact(
        "MFS design-choice ablation (subsystem F, 6 extractions each)",
        render_table(printable),
    )
    record_result(
        "mfs_ablation",
        **{
            f"{row['variant']} false skips": row["_false"]
            for row in rows
        },
        **{
            f"{row['variant']} probes per MFS": row["probes per MFS"]
            for row in rows
        },
    )
    by_name = {row["variant"]: row for row in rows}
    full = by_name["full (reduce + symptom + validate)"]
    unvalidated = by_name["no box validation"]
    # The full pipeline's skip test is (near) sound...
    assert full["_false"] <= max(1, full["_covered"] // 50)
    # ...while removing validation admits measurably more healthy space.
    assert unvalidated["_false"] >= full["_false"]