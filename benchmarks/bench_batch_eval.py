"""Extension bench: the batched vectorized evaluation engine (S31).

The acceptance scenario for the batched solver front end: an MFS-heavy
point multiset — the necessity-ladder probes of every appendix-H
witness, duplicates included, exactly as ``MFSExtractor`` would submit
them — evaluated once through the scalar loop and once through
``evaluate_many`` from a cold start.  The batched pass must be at least
3x faster wall-clock while producing bit-identical measurements and
leaving the caller's RNG in the bit-identical state.

A second scenario chunks the Perftest exhaustive sweep (the other big
known-point-set consumer) through ``Testbed.run_many`` and re-checks
identity there; its speedup is recorded but not gated (the sweep spends
part of its time in the monitor, outside the batched region).

Wall times are the minimum over several rounds: the quantity under
test is the engine's cost, not the host's scheduling jitter.
"""

import time

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.baselines.perftest import PerftestGenerator
from repro.core.batcheval import BatchEvaluator
from repro.core.mfs import MFSExtractor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS

#: Timing rounds per side; the minimum is reported.
ROUNDS = 5
#: Ladder replications (an anomaly is typically re-extracted a few
#: times per campaign as the search re-enters uncovered corners).
LADDER_REPEATS = 2
SUBSYSTEM = "H"
PERFTEST_SUBSYSTEM = "C"
PERFTEST_LIMIT = 250
PERFTEST_BATCH = 64


def mfs_heavy_points():
    """The probe multiset of every appendix-H witness's MFS ladder."""
    subsystem = get_subsystem(SUBSYSTEM)
    space = SearchSpace.for_subsystem(subsystem)
    extractor = MFSExtractor(space, classify=lambda workload: "healthy")
    points = []
    for setting in APPENDIX_SETTINGS:
        if setting.subsystem != SUBSYSTEM:
            continue
        points.extend(extractor._ladder_points(setting.workload, set()))
    return points * LADDER_REPEATS


def measurement_key(measurement):
    return (
        list(measurement.counters.items()),
        [list(s.values.items()) for s in measurement.samples],
        measurement.directions,
        measurement.fired,
        list(measurement.features.items()),
    )


def run_mfs_scenario():
    subsystem = get_subsystem(SUBSYSTEM)
    points = mfs_heavy_points()

    def scalar_pass():
        model = SteadyStateModel(subsystem)
        rng = np.random.default_rng(0)
        return [model.evaluate(p, rng) for p in points], rng

    def batched_pass():
        evaluator = BatchEvaluator(SteadyStateModel(subsystem))
        rng = np.random.default_rng(0)
        return evaluator.evaluate_many(points, rng=rng), rng

    def best_of(runner):
        best, keep = float("inf"), None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            keep = runner()
            best = min(best, time.perf_counter() - started)
        return best, keep

    scalar_seconds, (scalar, scalar_rng) = best_of(scalar_pass)
    batched_seconds, (batched, batched_rng) = best_of(batched_pass)
    identical = (
        [measurement_key(m) for m in scalar]
        == [measurement_key(m) for m in batched]
        and scalar_rng.bit_generator.state == batched_rng.bit_generator.state
    )
    return {
        "points": len(points),
        "unique_points": len({str(p) for p in points}),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "identical": identical,
    }


def run_perftest_scenario():
    def sweep(batch):
        generator = PerftestGenerator(PERFTEST_SUBSYSTEM, batch=batch)
        started = time.perf_counter()
        found = generator.sweep(
            seed=0, limit=PERFTEST_LIMIT,
            batch_size=PERFTEST_BATCH if batch else 0,
        )
        return time.perf_counter() - started, found, generator.testbed

    scalar_seconds = batched_seconds = float("inf")
    for _ in range(ROUNDS):
        seconds, scalar_found, scalar_testbed = sweep(batch=False)
        scalar_seconds = min(scalar_seconds, seconds)
        seconds, batched_found, batched_testbed = sweep(batch=True)
        batched_seconds = min(batched_seconds, seconds)
    return {
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "identical": (
            scalar_found == batched_found
            and scalar_testbed.clock.now == batched_testbed.clock.now
        ),
    }


def test_batch_eval_speedup(benchmark):
    data = benchmark.pedantic(run_mfs_scenario, rounds=1, iterations=1)
    sweep = run_perftest_scenario()
    speedup = data["scalar_seconds"] / max(data["batched_seconds"], 1e-9)
    sweep_speedup = (
        sweep["scalar_seconds"] / max(sweep["batched_seconds"], 1e-9)
    )
    record_result(
        "batch_eval",
        points=data["points"],
        unique_points=data["unique_points"],
        scalar_seconds=data["scalar_seconds"],
        batched_seconds=data["batched_seconds"],
        speedup=speedup,
        perftest_scalar_seconds=sweep["scalar_seconds"],
        perftest_batched_seconds=sweep["batched_seconds"],
        perftest_speedup=sweep_speedup,
    )
    print_artifact(
        "Batched evaluation: MFS-heavy ladder multiset on subsystem "
        f"{SUBSYSTEM} ({data['points']} points, "
        f"{data['unique_points']} unique)",
        "\n".join(
            [
                f"  scalar loop:   {data['scalar_seconds'] * 1e3:.1f}ms",
                f"  evaluate_many: {data['batched_seconds'] * 1e3:.1f}ms "
                f"({speedup:.2f}x)",
                f"  perftest sweep ({PERFTEST_LIMIT} pts, "
                f"batch={PERFTEST_BATCH}): "
                f"{sweep['scalar_seconds'] * 1e3:.1f}ms -> "
                f"{sweep['batched_seconds'] * 1e3:.1f}ms "
                f"({sweep_speedup:.2f}x)",
            ]
        ),
    )
    # Identity first: speed must not change a single bit.
    assert data["identical"], "batched MFS evaluation diverged from scalar"
    assert sweep["identical"], "batched perftest sweep diverged from scalar"
    # The acceptance floor: 3x on the MFS-heavy path, cold cache.
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x < 3x"
