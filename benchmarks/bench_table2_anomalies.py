"""Table 2: the 18 anomalies found by searching subsystems F and H.

Runs Collie (diagnostic counters, MFS on) on both evaluation subsystems
and reports which Table 2 rows the campaigns reproduce, alongside the
extracted minimal feature sets.
"""

from benchmarks.conftest import (
    F_TAGS,
    H_TAGS,
    print_artifact,
    record_result,
)
from repro.analysis import render_table, table2_rows
from repro.analysis.tables import TABLE2_COLUMNS


def found_tags_across(reports):
    tags = set()
    for report in reports:
        tags.update(report.first_hit_times())
    return tags


def test_table2(benchmark, campaigns):
    def campaign():
        return (
            campaigns.collie("F"),
            campaigns.collie("H"),
        )

    reports_f, reports_h = benchmark.pedantic(campaign, rounds=1, iterations=1)
    found = found_tags_across(reports_f) | found_tags_across(reports_h)
    record_result(
        "table2_anomalies",
        reproduced=len(found),
        total=18,
        f_found=len(found & set(F_TAGS)),
        h_found=len(found & set(H_TAGS)),
    )

    rows = table2_rows(found_tags=found)
    print_artifact(
        "Table 2: anomalies found on subsystems F and H "
        f"({len(found)}/18 reproduced across seeds; paper: 18/18)",
        render_table(rows, columns=TABLE2_COLUMNS),
    )
    mfs_lines = []
    for label, reports in (("F", reports_f), ("H", reports_h)):
        best = max(reports, key=lambda r: len(r.anomalies))
        mfs_lines.append(f"subsystem {label} (seed with most findings):")
        for i, mfs in enumerate(best.anomalies, 1):
            mfs_lines.append(f"  MFS {i}: {mfs.describe()}")
    print_artifact("Extracted minimal feature sets", "\n".join(mfs_lines))

    # The paper's qualitative claims: every H anomaly is reachable, the
    # easy CX-6 anomalies always reproduce, and the campaign finds well
    # beyond the random baseline's 7.
    assert set(H_TAGS) <= found
    assert {"A1", "A2", "A3", "A9", "A11", "A12", "A13"} <= found
    assert len(found & set(F_TAGS)) >= 9
