"""Shared search campaigns for the evaluation benchmarks.

Each figure/table bench consumes multi-seed search campaigns; running
them once per session keeps ``pytest benchmarks/ --benchmark-only``
affordable.  ``REPRO_BENCH_SEEDS`` (default 3) and
``REPRO_BENCH_HOURS`` (default 10, the paper's budget) scale the
campaigns.

Machine-readable summaries: every bench calls :func:`record_result`
with its headline metrics; ``--bench-json OUT.json`` (or the
``REPRO_BENCH_JSON`` environment variable) writes them all as one JSON
document at session end, so the perf trajectory can be tracked across
PRs instead of scraped from text logs.
"""

import json
import os

import pytest

from repro.baselines import BayesOptSearch, RandomSearch
from repro.core import Collie

SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))
BUDGET_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "10"))

#: Ground-truth anomaly tags per evaluated subsystem.
F_TAGS = tuple(f"A{i}" for i in range(1, 14))
H_TAGS = tuple(f"A{i}" for i in range(14, 19))


def run_collie(subsystem="F", counter_mode="diag", use_mfs=True, seed=0):
    return Collie.for_subsystem(
        subsystem,
        counter_mode=counter_mode,
        use_mfs=use_mfs,
        budget_hours=BUDGET_HOURS,
        seed=seed,
    ).run()


class Campaigns:
    """Lazily-run, memoised multi-seed search campaigns."""

    def __init__(self):
        self._cache = {}

    def collie(self, subsystem="F", counter_mode="diag", use_mfs=True):
        key = ("collie", subsystem, counter_mode, use_mfs)
        if key not in self._cache:
            self._cache[key] = [
                run_collie(subsystem, counter_mode, use_mfs, seed)
                for seed in range(1, SEEDS + 1)
            ]
        return self._cache[key]

    def random(self, subsystem="F"):
        key = ("random", subsystem)
        if key not in self._cache:
            self._cache[key] = [
                RandomSearch(
                    subsystem, budget_hours=BUDGET_HOURS, seed=seed
                ).run()
                for seed in range(1, SEEDS + 1)
            ]
        return self._cache[key]

    def bayesopt(self, subsystem="F", use_mfs=True):
        key = ("bo", subsystem, use_mfs)
        if key not in self._cache:
            self._cache[key] = [
                BayesOptSearch(
                    subsystem, budget_hours=BUDGET_HOURS, seed=seed,
                    use_mfs=use_mfs,
                ).run()
                for seed in range(1, SEEDS + 1)
            ]
        return self._cache[key]


@pytest.fixture(scope="session")
def campaigns():
    return Campaigns()


def print_artifact(title, body):
    """Emit a regenerated paper artifact to the bench log."""
    print(f"\n=== {title} ===")
    print(body)


# -- machine-readable bench summaries ----------------------------------------

#: bench name -> headline metrics, collected across the whole session.
_RESULTS = {}


def record_result(bench, **metrics):
    """Record one bench's headline numbers for the JSON summary."""
    _RESULTS.setdefault(bench, {}).update(metrics)


def _coerce(value):
    """JSON-ify numpy scalars and other number-likes."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serialisable: {value!r}")


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--bench-json",
            action="store",
            default=None,
            help="write machine-readable bench summaries to this path",
        )
    except ValueError:
        pass  # already registered (e.g. by another conftest)


def pytest_sessionfinish(session, exitstatus):
    try:
        target = session.config.getoption("--bench-json", default=None)
    except (ValueError, KeyError):
        target = None
    target = target or os.environ.get("REPRO_BENCH_JSON")
    if not target or not _RESULTS:
        return
    payload = {
        # Version stamp for downstream consumers (CI trend tooling,
        # cross-run diffing): bump when the payload shape changes.
        "bench_schema": 1,
        "seeds": SEEDS,
        "budget_hours": BUDGET_HOURS,
        "benches": {name: _RESULTS[name] for name in sorted(_RESULTS)},
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True,
                  default=_coerce)
        handle.write("\n")
    print(f"\nbench summaries written to {target}")
