"""Figure 4: mean time to find anomalies — random vs BO vs Collie.

The paper's headline search comparison on subsystem F: random input
generation plateaus on the simple anomalies (7 of 13), Bayesian
Optimization improves only marginally (8), and Collie's counter-guided
annealing finds substantially more within the same 10-hour budget.
"""

from benchmarks.conftest import F_TAGS, print_artifact, record_result
from repro.analysis import time_to_find_series
from repro.analysis.render import render_time_to_find


def series_from(approach, reports):
    return time_to_find_series(
        approach,
        [report.first_hit_times() for report in reports],
        max_anomalies=len(F_TAGS),
    )


def test_fig4(benchmark, campaigns):
    def campaign():
        return (
            campaigns.random("F"),
            campaigns.bayesopt("F", use_mfs=False),
            campaigns.bayesopt("F", use_mfs=True),
            campaigns.collie("F"),
        )

    random_reports, bo_pure, bo_mfs, collie_reports = benchmark.pedantic(
        campaign, rounds=1, iterations=1
    )
    series = [
        series_from("random", random_reports),
        series_from("BO", bo_pure),
        series_from("BO+MFS", bo_mfs),
        series_from("Collie", collie_reports),
    ]
    print_artifact(
        "Figure 4: mean time to find the k-th anomaly on subsystem F "
        "(paper: random 7, BO 8, Collie all 13)",
        render_time_to_find(series),
    )
    found = {s.approach: s.anomalies_found for s in series}
    record_result("fig4_search_time", **found)
    print_artifact(
        "Figure 4 summary: anomalies found (majority of seeds)",
        "\n".join(f"  {name}: {count}/13" for name, count in found.items()),
    )
    # Shape assertions, per the paper's §7.2 conclusions:
    # (1) the GP alone "improves efficiency but to a very limited
    #     extent" — without the MFS enhancement it plateaus with random;
    assert found["BO"] <= found["random"] + 1
    # (2) random never escapes the simple-condition suite;
    assert found["random"] <= 8
    # (3) the guided approaches clearly dominate the unguided ones.
    assert found["Collie"] > found["random"]
    assert found["BO+MFS"] > found["BO"]
    assert found["Collie"] + 1 >= found["BO+MFS"]
