"""Extension bench: the §8 inter-arrival dimension, and §7.4's question.

§7.4 asks whether Ethernet-based RDMA needs end-to-end flow control:
the pause anomalies arise because "the receiver cannot consume packets
as fast as the sender sends" and PFC is the only brake.  The duty-cycle
extension makes that concrete: replaying every pause-frame trigger from
Appendix A with the sender throttled to the receiver's degraded service
rate (a poor man's end-to-end flow control) eliminates the pause storms
— at the price the paper implies, namely giving up offered throughput.
"""

import numpy as np

from benchmarks.conftest import print_artifact, record_result
from repro.analysis import render_table
from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def throttle_sweep():
    rows = []
    rng = np.random.default_rng(0)
    pause_settings = [
        s for s in APPENDIX_SETTINGS if s.expected_symptom == "pause frame"
    ]
    for setting in pause_settings:
        subsystem = get_subsystem(setting.subsystem)
        model = SteadyStateModel(subsystem, noise=0.0)
        monitor = AnomalyMonitor(subsystem)
        hot = model.evaluate(setting.workload, rng)
        fwd = hot.directions[0]
        # Throttle to just under the receiver's degraded service rate.
        service_fraction = (
            fwd.achieved_msgs_per_sec / fwd.injection_msgs_per_sec
        )
        throttled_duty = max(0.01, min(1.0, service_fraction * 0.95))
        cool = model.evaluate(
            setting.workload.replace(duty_cycle=throttled_duty), rng
        )
        rows.append(
            {
                "setting": setting.number,
                "pause before": f"{100 * hot.pause_ratio:.0f}%",
                "pause after": f"{100 * cool.pause_ratio:.1f}%",
                "duty cycle": f"{throttled_duty:.2f}",
                "throughput kept": f"{100 * service_fraction:.0f}%",
                "verdict after": monitor.classify(cool).symptom,
            }
        )
    return rows


def test_duty_cycle_extension(benchmark):
    rows = benchmark(throttle_sweep)
    print_artifact(
        "End-to-end throttling (duty-cycle extension) vs the 13 "
        "pause-frame triggers",
        render_table(rows),
    )
    record_result(
        "duty_cycle_extension",
        pause_triggers=len(rows),
        storms_eliminated=sum(
            1 for row in rows if row["pause after"] == "0.0%"
        ),
    )
    assert all(row["pause after"] == "0.0%" for row in rows)
    # The price: none of these keep full offered load (that is exactly
    # why the paper says hosts need real end-to-end flow control).
    assert all(float(row["duty cycle"]) < 1.0 for row in rows)
