#!/usr/bin/env python
"""Quickstart: hunt for performance anomalies on one RDMA subsystem.

Runs a short Collie search (diagnostic counters + MFS) against the
simulated 200 Gbps ConnectX-6 testbed (Table 1's subsystem F), then
prints every anomaly found with its minimal feature set — the necessary
trigger conditions a developer would use to avoid it.

    python examples/quickstart.py [subsystem-letter] [budget-hours]
"""

import sys

from repro.core import Collie


def main() -> None:
    letter = sys.argv[1] if len(sys.argv) > 1 else "F"
    budget_hours = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    print(f"Searching subsystem {letter} for {budget_hours:g} simulated "
          f"hours (each experiment costs 20-60s of testbed time)...\n")
    collie = Collie.for_subsystem(letter, seed=0, budget_hours=budget_hours)
    report = collie.run()

    print(report.summary())
    print()
    print(f"counter ranking (by dispersion over 10 probes): "
          f"{', '.join(report.counter_ranking[:4])}, ...")
    print(f"experiments run: {report.experiments}  "
          f"(plus {report.skipped_points} points skipped via MFS matching)")
    print()
    print("Per-anomaly discovery log:")
    for index, mfs in enumerate(report.anomalies, 1):
        hours = mfs.found_at_seconds / 3600
        print(f"  [{hours:5.2f}h] anomaly {index}: {mfs.describe()}")
        print(f"           witness: {mfs.witness.summary()}")


if __name__ == "__main__":
    main()
