#!/usr/bin/env python
"""§8's fleet extension: Collie across multiple testbed machines.

"Powerful data centers can run Collie on multiple machines for a longer
time."  This example ranks the nine diagnostic counters once, hands each
machine a share, and lets the fleet search concurrently.  On a single
testbed the nine counters dilute the 10-hour budget and the
conditions-heavy anomalies often stay out of reach; with one counter per
machine the full Table 2 suite of subsystem F is usually recovered.
"""

import sys

from repro.core.parallel import ParallelCollie


def main() -> None:
    letter = sys.argv[1] if len(sys.argv) > 1 else "F"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0

    print(f"{'machines':>9} | {'anomaly tags found':>18} | experiments | "
          f"wall-clock")
    print("-" * 60)
    for machines in (1, 3, 9):
        report = ParallelCollie(
            letter, machines=machines, budget_hours=budget, seed=1
        ).run()
        print(f"{machines:>9} | {len(report.found_tags()):>18} | "
              f"{report.total_experiments:>11} | "
              f"{report.elapsed_seconds / 3600:>7.1f}h")

    print("\nFleet (9 machines) anomaly set:")
    fleet = ParallelCollie(letter, machines=9, budget_hours=budget,
                           seed=1).run()
    for index, mfs in enumerate(fleet.anomalies, 1):
        print(f"  {index:2d}: {mfs.describe()}")


if __name__ == "__main__":
    main()
