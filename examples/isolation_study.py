#!/usr/bin/env python
"""§7.4's isolation implication: opaque resources leak across tenants.

Two tenants share a 200 Gbps subsystem under perfect bandwidth
isolation (each guaranteed half the link).  The victim keeps 64 modest
connections of small writes; aggressors of growing connection/MR
appetite move in next door.  Bandwidth-wise nothing changes — the
collapse below is entirely the shared QPC/MTT/receive-WQE caches, the
resources "opaque for developers and data center operators" the paper
says RDMA multi-tenancy must start accounting for.
"""

from repro.analysis.sensitivity import SensitivityAnalyzer
from repro.hardware.coexist import CoexistenceModel
from repro.hardware.subsystems import get_subsystem
from repro.hardware.workload import WorkloadDescriptor
from repro.verbs.constants import Opcode

SUBSYSTEM = "F"


def main() -> None:
    subsystem = get_subsystem(SUBSYSTEM)
    model = CoexistenceModel(subsystem)

    victim = WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=64, wqe_batch=1,
        msg_sizes_bytes=(512,), mtu=1024,
    )
    print(f"victim tenant: {victim.summary()}")
    print("guaranteed bandwidth share: 50%\n")

    print(f"{'aggressor QPs':>14} | {'victim fair share':>18} | "
          f"{'victim achieved':>16} | isolation held")
    print("-" * 72)
    for qps in (4, 64, 512, 2048, 8192):
        aggressor = WorkloadDescriptor(
            opcode=Opcode.WRITE, num_qps=qps, mrs_per_qp=8,
            msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1,
        )
        result = model.evaluate(victim, aggressor, victim_share=0.5)
        print(f"{qps:>14} | {result.fair_share_gbps:>13.1f} Gbps | "
              f"{result.shared_gbps:>11.1f} Gbps | "
              f"{100 * result.interference_factor:>5.0f}%")

    print("\nMitigation: batching hides the cache misses behind the "
          "pipeline\n(the Appendix A root-cause-#2 discussion).  The "
          "victim next to the\n2048-QP aggressor, by posting batch "
          "size:\n")
    aggressor = WorkloadDescriptor(
        opcode=Opcode.WRITE, num_qps=2048, mrs_per_qp=8,
        msg_sizes_bytes=(512,), mtu=1024, wqe_batch=1,
    )
    print(f"{'batch':>6} | isolation held")
    for batch in (1, 4, 16, 64):
        result = model.evaluate(
            victim.replace(wqe_batch=batch), aggressor, victim_share=0.5
        )
        print(f"{batch:>6} | {100 * result.interference_factor:>5.0f}%")

    print("\nFor contrast, a dimension profile of a genuinely fragile "
          "workload\n(anomaly #3's MTU sensitivity):\n")
    from repro.workloads.appendix import setting

    analyzer = SensitivityAnalyzer(subsystem)
    print(analyzer.profile(setting(3).workload, "mtu").render())


if __name__ == "__main__":
    main()
