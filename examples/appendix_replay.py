#!/usr/bin/env python
"""Replay the paper's 18 concrete anomaly trigger settings (Appendix A).

Each setting runs against the subsystem it was reported on; the output
mirrors the appendix: the exact verbs-level configuration, the observed
symptom, and whether the published anomaly reproduced.
"""

import numpy as np

from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.appendix import APPENDIX_SETTINGS


def main() -> None:
    rng = np.random.default_rng(0)
    reproduced = 0
    for setting in APPENDIX_SETTINGS:
        subsystem = get_subsystem(setting.subsystem)
        measurement = SteadyStateModel(subsystem).evaluate(
            setting.workload, rng
        )
        verdict = AnomalyMonitor(subsystem).classify(measurement)
        ok = (
            setting.expected_tag in measurement.tags
            and verdict.symptom == setting.expected_symptom
        )
        reproduced += ok
        novelty = "new" if setting.is_new else "old"
        fwd = measurement.directions[0]
        print(f"Anomaly setting #{setting.number} ({novelty}, subsystem "
              f"{setting.subsystem}) -> {'REPRODUCED' if ok else 'MISSED'}")
        print(f"    {setting.workload.summary()}")
        print(f"    expected {setting.expected_tag} "
              f"({setting.expected_symptom}); observed tags "
              f"{','.join(measurement.tags) or '-'}, {verdict.symptom}, "
              f"wire {fwd.wire_gbps:.1f} Gbps, "
              f"pause {100 * measurement.pause_ratio:.1f}%")
    print(f"\n{reproduced}/18 published trigger settings reproduced.")


if __name__ == "__main__":
    main()
