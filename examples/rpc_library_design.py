#!/usr/bin/env python
"""§7.3 case study 1: anomaly prevention for an RDMA RPC library.

Before implementing their library, the developers restrict Collie's
search space to the workloads the library could ever generate (RC only —
it needs one-sided ops and reliable delivery), and ask whether that
space contains performance anomalies.  The paper's outcome, reproduced
here:

* the throughput-tuned design — RDMA READ with large WQE batches and
  long SG lists — lands in anomaly #4's trigger region;
* the control path — SEND/RECV with a deep receive queue "in case of
  receive-not-ready" — lands in anomaly #5's;
* Collie's suggestions: move bulk data onto batched WRITEs, and size the
  control path's receive queue carefully.
"""

import numpy as np

from repro.core import Collie
from repro.core.monitor import AnomalyMonitor
from repro.core.space import SearchSpace
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.applications import (
    rpc_library_control_workload,
    rpc_library_workload,
)
from repro.verbs.constants import QPType

SUBSYSTEM = "F"


def check(workload, label):
    subsystem = get_subsystem(SUBSYSTEM)
    measurement = SteadyStateModel(subsystem).evaluate(
        workload, np.random.default_rng(0)
    )
    verdict = AnomalyMonitor(subsystem).classify(measurement)
    marker = "ANOMALY" if verdict.is_anomalous else "ok"
    print(f"  [{marker:7s}] {label}")
    print(f"            {workload.summary()}")
    print(f"            symptom={verdict.symptom} "
          f"wire={verdict.min_wire_gbps:.0f}Gbps "
          f"pause={100 * verdict.pause_ratio:.1f}%")
    return verdict


def main() -> None:
    print("Step 1: search the library's restricted space (RC-only).\n")
    space = SearchSpace.for_subsystem(SUBSYSTEM, qp_types=(QPType.RC,))
    collie = Collie.for_subsystem(
        SUBSYSTEM, space=space, seed=0, budget_hours=3.0
    )
    report = collie.run()
    print(f"Collie found {len(report.anomalies)} anomalies inside the "
          f"restricted space:")
    for mfs in report.anomalies:
        print(f"  - {mfs.describe()}")

    print("\nStep 2: check the two candidate designs directly.\n")
    check(rpc_library_workload(use_read=True),
          "data path v1: READ + batch 64 + 4-entry SG lists")
    check(rpc_library_control_workload(recv_queue_depth=2048),
          "control path v1: SEND/RECV with 2048-deep receive queue")

    print("\nStep 3: apply Collie's design suggestions.\n")
    check(rpc_library_workload(use_read=False),
          "data path v2: batched WRITE instead of READ")
    check(rpc_library_control_workload(recv_queue_depth=128),
          "control path v2: receive queue sized to 128")

    print("\nBoth suggested designs are clean; the library ships with "
          "WRITE-based bulk data\nand a carefully sized control receive "
          "queue — as in the paper.")


if __name__ == "__main__":
    main()
