#!/usr/bin/env python
"""Watch a workload message by message.

Traces a healthy baseline and then anomaly #9's trigger workload through
the functional verbs datapath, with events spaced on the timeline the
performance model predicts — the per-message view an engineer uses to
sanity-check what a search point actually *does* before shipping it to a
vendor.
"""

from repro.core.tracing import TrafficTracer
from repro.hardware.workload import WorkloadDescriptor
from repro.workloads.appendix import setting


def main() -> None:
    tracer = TrafficTracer("F")

    print("A healthy baseline (8 QPs of 64KB WRITEs):\n")
    log = tracer.trace(WorkloadDescriptor(mtu=4096), messages=6)
    print(log.render(limit=12))

    print("\n\nAnomaly #9's trigger (bidirectional mixed-SG writes on a "
          "strict-ordering host):\n")
    log = tracer.trace(setting(9).workload, messages=6)
    print(log.render(limit=12))
    slowdown = log.predicted_msgs_per_sec
    print(f"\nNote the stretched timeline: the model predicts only "
          f"{slowdown:,.0f} msgs/s here.")


if __name__ == "__main__":
    main()
