#!/usr/bin/env python
"""§7.3 case study 2: debugging a distributed-ML framework with MFS.

The BytePS-based training framework melted down on the new subsystem E:
pause storms with only a handful of connections, throughput below a
100 Gbps NIC's.  Weeks of vendor debugging found nothing.  Running
Collie and matching the application's workload against the extracted
minimal feature sets identified the trigger — bidirectional traffic
whose WQEs pack tensor and metadata into one mixed SG list — and
breaking one MFS condition bypassed the anomaly before any vendor fix.
"""

import numpy as np

from repro.core import Collie
from repro.core.mfs import match_any
from repro.core.monitor import AnomalyMonitor
from repro.hardware.model import SteadyStateModel
from repro.hardware.subsystems import get_subsystem
from repro.workloads.applications import (
    dml_byteps_fixed_workload,
    dml_byteps_workload,
)

SUBSYSTEM = "E"


def measure(workload):
    subsystem = get_subsystem(SUBSYSTEM)
    measurement = SteadyStateModel(subsystem).evaluate(
        workload, np.random.default_rng(0)
    )
    return measurement, AnomalyMonitor(subsystem).classify(measurement)


def main() -> None:
    print("The symptom: the DML framework's push/pull traffic on "
          f"subsystem {SUBSYSTEM}.\n")
    app = dml_byteps_workload()
    measurement, verdict = measure(app)
    print(f"  workload: {app.summary()}")
    print(f"  symptom:  {verdict.symptom}, "
          f"pause ratio {100 * verdict.pause_ratio:.1f}%, "
          f"throughput {verdict.min_wire_gbps:.0f} Gbps "
          f"(a 200 Gbps link!)\n")

    print("Run Collie on the subsystem and collect the MFS set...\n")
    matched = None
    anomalies = []
    # The production team "ran Collie" until the application's behaviour
    # matched an extracted MFS; campaigns are seeded, so keep searching.
    for seed in range(4):
        report = Collie.for_subsystem(
            SUBSYSTEM, seed=seed, budget_hours=6.0
        ).run()
        anomalies.extend(report.anomalies)
        matched = match_any(anomalies, app)
        print(f"  campaign {seed}: {len(report.anomalies)} anomalies "
              f"extracted ({'match!' if matched else 'no match yet'})")
        if matched is not None:
            break
    print()
    if matched is None:
        print("  (no MFS matched — try a longer search budget)")
        return
    print("The application's workload matches this MFS:")
    print(f"  {matched.describe()}\n")

    print("Break one condition: stop packing metadata and tensor into a "
          "mixed SG list.\n")
    fixed = dml_byteps_fixed_workload()
    _, fixed_verdict = measure(fixed)
    print(f"  workload: {fixed.summary()}")
    print(f"  symptom:  {fixed_verdict.symptom}, "
          f"throughput {fixed_verdict.min_wire_gbps:.0f} Gbps")
    assert not fixed_verdict.is_anomalous
    print("\nThe anomaly is bypassed without waiting for a vendor fix — "
          "as in the paper.")


if __name__ == "__main__":
    main()
