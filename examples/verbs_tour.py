#!/usr/bin/env python
"""A tour of the software verbs layer: real bytes over simulated RDMA.

Collie's search space is defined entirely in verbs terms, so this repo
carries a complete software implementation of the API.  This example
walks the classic flow — register memory, connect queue pairs, post
work requests, poll completions — and moves actual bytes through
WRITE, READ, SEND/RECV and UD datagrams, including the error semantics
(RNR on reliable transports, silent drops on unreliable ones).
"""

from repro.verbs import (
    MTU,
    AccessFlags,
    DataPath,
    Device,
    Fabric,
    Opcode,
    QPCapabilities,
    QPType,
    RecvWorkRequest,
    ScatterGatherEntry,
    SendWorkRequest,
)


def main() -> None:
    # -- device discovery and connection bootstrap -----------------------
    fabric = Fabric()
    ctx_a = Device("rnic-a").open()
    ctx_b = Device("rnic-b").open()
    fabric.attach(ctx_a)
    fabric.attach(ctx_b)

    pd_a, pd_b = ctx_a.alloc_pd(), ctx_b.alloc_pd()
    cq_a, cq_b = ctx_a.create_cq(256), ctx_b.create_cq(256)
    cap = QPCapabilities(max_send_wr=64, max_recv_wr=64)
    qp_a = ctx_a.create_qp(pd_a, QPType.RC, cq_a, cq_a, cap)
    qp_b = ctx_b.create_qp(pd_b, QPType.RC, cq_b, cq_b, cap)
    fabric.connect(qp_a, qp_b, MTU.MTU_4096)
    print(f"connected RC pair: {qp_a} <-> {qp_b}")

    mr_a = pd_a.reg_mr(64 * 1024, AccessFlags.all_remote())
    mr_b = pd_b.reg_mr(64 * 1024, AccessFlags.all_remote())
    datapath = DataPath(fabric)

    # -- one-sided WRITE ---------------------------------------------------
    mr_a.write(mr_a.addr, b"one-sided write payload")
    qp_a.post_send(
        SendWorkRequest(
            opcode=Opcode.WRITE,
            sg_list=[ScatterGatherEntry(mr_a.addr, 23, mr_a.lkey)],
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
        )
    )
    datapath.process(qp_a)
    print(f"WRITE: remote buffer now holds {mr_b.read(mr_b.addr, 23)!r}, "
          f"completion {cq_a.poll_one().status.value}")

    # -- one-sided READ ------------------------------------------------------
    mr_b.write(mr_b.addr + 1024, b"read me back")
    qp_a.post_send(
        SendWorkRequest(
            opcode=Opcode.READ,
            sg_list=[ScatterGatherEntry(mr_a.addr + 4096, 12, mr_a.lkey)],
            remote_addr=mr_b.addr + 1024,
            rkey=mr_b.rkey,
        )
    )
    datapath.process(qp_a)
    print(f"READ:  local buffer received "
          f"{mr_a.read(mr_a.addr + 4096, 12)!r}")
    cq_a.drain()

    # -- two-sided SEND/RECV with a scatter-gather list --------------------
    qp_b.post_recv(
        RecvWorkRequest(
            sg_list=[ScatterGatherEntry(mr_b.addr + 8192, 64, mr_b.lkey)]
        )
    )
    mr_a.write(mr_a.addr + 100, b"headerbody")
    qp_a.post_send(
        SendWorkRequest(
            opcode=Opcode.SEND,
            sg_list=[
                ScatterGatherEntry(mr_a.addr + 100, 6, mr_a.lkey),
                ScatterGatherEntry(mr_a.addr + 106, 4, mr_a.lkey),
            ],
        )
    )
    datapath.process(qp_a)
    wc = cq_b.poll_one()
    print(f"SEND:  receiver completion {wc.status.value}, "
          f"{wc.byte_len} bytes gathered from a 2-entry SG list -> "
          f"{mr_b.read(mr_b.addr + 8192, 10)!r}")

    # -- receiver-not-ready: the reliable transport errors out -----------
    qp_a.post_send(
        SendWorkRequest(
            opcode=Opcode.SEND,
            sg_list=[ScatterGatherEntry(mr_a.addr, 8, mr_a.lkey)],
        )
    )
    datapath.process(qp_a)
    print(f"RNR:   SEND with no posted receive -> "
          f"{cq_a.poll_one().status.value}, QP state {qp_a.state.value}")

    # -- UD datagrams carry a 40-byte GRH ----------------------------------
    qp_u1 = ctx_a.create_qp(pd_a, QPType.UD, cq_a, cq_a, cap)
    qp_u2 = ctx_b.create_qp(pd_b, QPType.UD, cq_b, cq_b, cap)
    fabric.activate_ud(qp_u1, MTU.MTU_2048)
    fabric.activate_ud(qp_u2, MTU.MTU_2048)
    qp_u2.post_recv(
        RecvWorkRequest(
            sg_list=[ScatterGatherEntry(mr_b.addr + 16384, 2048, mr_b.lkey)]
        )
    )
    qp_u1.post_send(
        SendWorkRequest(
            opcode=Opcode.SEND,
            sg_list=[ScatterGatherEntry(mr_a.addr + 100, 6, mr_a.lkey)],
            ah=qp_u2.qp_num,
        )
    )
    datapath.process(qp_u1)
    wc = cq_b.poll_one()
    print(f"UD:    datagram delivered, byte_len={wc.byte_len} "
          f"(6 payload + 40 GRH)")


if __name__ == "__main__":
    main()
